#include "os/vfs.hpp"

#include "support/strings.hpp"

namespace dydroid::os {

using support::Status;

std::string internal_storage_dir(std::string_view pkg) {
  return "/data/data/" + std::string(pkg);
}

PathInfo classify_path(std::string_view path) {
  PathInfo info;
  if (path.starts_with("/system/")) {
    info.domain = PathDomain::kSystem;
    return info;
  }
  constexpr std::string_view kDataData = "/data/data/";
  if (path.starts_with(kDataData)) {
    info.domain = PathDomain::kAppPrivate;
    auto rest = path.substr(kDataData.size());
    const auto slash = rest.find('/');
    info.owner = std::string(rest.substr(0, slash));
    return info;
  }
  if (path.starts_with("/mnt/sdcard/") || path == kExternalStorageDir) {
    info.domain = PathDomain::kExternalStorage;
    return info;
  }
  info.domain = PathDomain::kOther;
  return info;
}

bool Vfs::can_write(const Principal& who, std::string_view path) const {
  if (who.is_system()) return true;
  const auto info = classify_path(path);
  switch (info.domain) {
    case PathDomain::kSystem:
      return false;
    case PathDomain::kAppPrivate:
      return info.owner == who.pkg;
    case PathDomain::kExternalStorage:
      // Pre-Android 4.4 (API 19): any app may write external storage.
      // From 4.4: requires WRITE_EXTERNAL_STORAGE.
      return api_level_ < 19 || who.has_write_external;
    case PathDomain::kOther:
      return false;
  }
  return false;
}

Status Vfs::write_file(const Principal& who, std::string_view path,
                       support::Bytes data) {
  return write_file(who, path, support::Blob::take(std::move(data)));
}

Status Vfs::write_file(const Principal& who, std::string_view path,
                       support::Blob data) {
  if (path.empty() || path.front() != '/') {
    return Status::failure("vfs: path not absolute: " + std::string(path));
  }
  if (!can_write(who, path)) {
    return Status::failure("vfs: permission denied: " + who.pkg +
                           " writing " + std::string(path));
  }
  const auto it = files_.find(path);
  const std::uint64_t old_size = it == files_.end() ? 0 : it->second.size();
  const std::uint64_t new_used = used_ - old_size + data.size();
  if (capacity_ != 0 && new_used > capacity_) {
    return Status::failure("vfs: device storage full");
  }
  used_ = new_used;
  files_.insert_or_assign(std::string(path), std::move(data));
  return Status();
}

std::optional<support::Blob> Vfs::read_file(std::string_view path) const {
  const auto it = files_.find(path);
  if (it == files_.end()) return std::nullopt;
  return it->second;
}

bool Vfs::exists(std::string_view path) const {
  return files_.find(path) != files_.end();
}

Status Vfs::delete_file(const Principal& who, std::string_view path) {
  const auto it = files_.find(path);
  if (it == files_.end()) {
    return Status::failure("vfs: no such file: " + std::string(path));
  }
  if (!can_write(who, path)) {
    return Status::failure("vfs: permission denied deleting " +
                           std::string(path));
  }
  used_ -= it->second.size();
  files_.erase(it);
  return Status();
}

Status Vfs::rename(const Principal& who, std::string_view from,
                   std::string_view to) {
  const auto it = files_.find(from);
  if (it == files_.end()) {
    return Status::failure("vfs: no such file: " + std::string(from));
  }
  if (!can_write(who, from) || !can_write(who, to)) {
    return Status::failure("vfs: permission denied renaming " +
                           std::string(from));
  }
  auto data = std::move(it->second);
  used_ -= data.size();
  files_.erase(it);
  return write_file(who, to, std::move(data));
}

std::vector<std::string> Vfs::list_dir(std::string_view dir_prefix) const {
  std::string prefix(dir_prefix);
  if (!prefix.empty() && prefix.back() != '/') prefix += '/';
  std::vector<std::string> out;
  for (auto it = files_.lower_bound(prefix); it != files_.end(); ++it) {
    if (!it->first.starts_with(prefix)) break;
    out.push_back(it->first);
  }
  return out;
}

}  // namespace dydroid::os
