// Simulated network: a registry of remote servers keyed by URL.
//
// Payloads can be static bytes or a callable — the callable form models the
// server-side gating used in the paper's Bouncer-evasion experiment (§III-B:
// "The server decides whether or not to send App_L the link to the copy of
// App_M"). Every fetch is recorded for the measurement log.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "support/bytes.hpp"
#include "support/error.hpp"

namespace dydroid::os {

class SystemServices;

struct FetchRecord {
  std::string url;
  bool succeeded = false;
  std::size_t bytes = 0;
};

class Network {
 public:
  explicit Network(const SystemServices* services) : services_(services) {}

  /// Serve static bytes at a URL.
  void host(std::string_view url, support::Bytes payload);
  /// Serve a dynamic payload; return nullopt to refuse (404 / gated).
  using Handler = std::function<std::optional<support::Bytes>()>;
  void host_dynamic(std::string_view url, Handler handler);
  void unhost(std::string_view url);

  /// Fetch a URL. Fails when the device has no connectivity, the URL is not
  /// hosted, or a dynamic handler refuses.
  support::Result<support::Bytes> fetch(std::string_view url);

  [[nodiscard]] const std::vector<FetchRecord>& fetch_log() const {
    return log_;
  }
  void clear_log() { log_.clear(); }

  [[nodiscard]] bool hosts(std::string_view url) const {
    return handlers_.find(std::string(url)) != handlers_.end();
  }

 private:
  const SystemServices* services_;
  std::map<std::string, Handler> handlers_;
  std::vector<FetchRecord> log_;
};

}  // namespace dydroid::os
