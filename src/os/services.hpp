// Simulated system services: clock, connectivity (airplane mode / WiFi),
// location, device & user identifiers, and content-provider data.
//
// These are the runtime-environment knobs the paper's Table VIII varies to
// expose environment-gated malware (system time before release date,
// airplane mode with/without WiFi, location off).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace dydroid::os {

/// Content-provider URIs (paper Table X "Content provider" category).
inline constexpr std::string_view kUriContacts = "content://contacts";
inline constexpr std::string_view kUriCalendar = "content://calendar";
inline constexpr std::string_view kUriCallLog = "content://call_log";
inline constexpr std::string_view kUriBrowser = "content://browser/bookmarks";
inline constexpr std::string_view kUriAudio = "content://media/audio";
inline constexpr std::string_view kUriImages = "content://media/images";
inline constexpr std::string_view kUriVideo = "content://media/video";
inline constexpr std::string_view kUriSettings = "content://settings";
inline constexpr std::string_view kUriMms = "content://mms";
inline constexpr std::string_view kUriSms = "content://sms";

class SystemServices {
 public:
  // --- clock ---
  [[nodiscard]] std::int64_t current_time_ms() const { return now_ms_; }
  void set_time_ms(std::int64_t t) { now_ms_ = t; }
  void advance_ms(std::int64_t delta) { now_ms_ += delta; }

  // --- connectivity ---
  [[nodiscard]] bool airplane_mode() const { return airplane_; }
  void set_airplane_mode(bool on) { airplane_ = on; }
  [[nodiscard]] bool wifi_enabled() const { return wifi_; }
  void set_wifi_enabled(bool on) { wifi_ = on; }
  /// True when the device can reach the Internet: WiFi overrides airplane
  /// mode (Table VIII "Airplane mode/WiFi ON" still has connectivity).
  [[nodiscard]] bool has_connectivity() const {
    return !airplane_ || wifi_;
  }

  // --- location ---
  [[nodiscard]] bool location_enabled() const { return location_; }
  void set_location_enabled(bool on) { location_ = on; }
  /// Last known location as "lat,lng"; empty string if the service is off.
  [[nodiscard]] std::string last_known_location() const {
    return location_ ? location_fix_ : std::string();
  }
  void set_location_fix(std::string fix) { location_fix_ = std::move(fix); }

  // --- identifiers (paper Table X: phone identity / user identity) ---
  [[nodiscard]] const std::string& imei() const { return imei_; }
  [[nodiscard]] const std::string& imsi() const { return imsi_; }
  [[nodiscard]] const std::string& iccid() const { return iccid_; }
  [[nodiscard]] const std::string& line1_number() const { return line1_; }
  [[nodiscard]] const std::vector<std::string>& accounts() const {
    return accounts_;
  }
  void set_identity(std::string imei, std::string imsi, std::string iccid,
                    std::string line1) {
    imei_ = std::move(imei);
    imsi_ = std::move(imsi);
    iccid_ = std::move(iccid);
    line1_ = std::move(line1);
  }
  void add_account(std::string account) {
    accounts_.push_back(std::move(account));
  }

  // --- content providers ---
  /// Rows stored per provider URI (opaque strings; privacy analysis only
  /// needs that reads return provider-tagged data).
  void put_provider_row(std::string_view uri, std::string row) {
    providers_[std::string(uri)].push_back(std::move(row));
  }
  [[nodiscard]] std::vector<std::string> query_provider(
      std::string_view uri) const {
    const auto it = providers_.find(std::string(uri));
    if (it == providers_.end()) return {};
    return it->second;
  }

 private:
  std::int64_t now_ms_ = 1'478'000'000'000;  // ~Nov 2016, the crawl date
  bool airplane_ = false;
  bool wifi_ = true;
  bool location_ = true;
  std::string location_fix_ = "42.0565,-87.6753";  // Evanston, IL
  std::string imei_ = "356938035643809";
  std::string imsi_ = "310260000000000";
  std::string iccid_ = "89014103211118510720";
  std::string line1_ = "+18475551212";
  std::vector<std::string> accounts_ = {"user@example.com"};
  std::map<std::string, std::vector<std::string>> providers_;
};

}  // namespace dydroid::os
