#include "os/network.hpp"

#include "os/services.hpp"

namespace dydroid::os {

using support::Bytes;
using support::Result;

void Network::host(std::string_view url, Bytes payload) {
  handlers_[std::string(url)] = [payload = std::move(payload)]() {
    return std::optional<Bytes>(payload);
  };
}

void Network::host_dynamic(std::string_view url, Handler handler) {
  handlers_[std::string(url)] = std::move(handler);
}

void Network::unhost(std::string_view url) {
  handlers_.erase(std::string(url));
}

Result<Bytes> Network::fetch(std::string_view url) {
  FetchRecord record;
  record.url = std::string(url);
  if (services_ != nullptr && !services_->has_connectivity()) {
    log_.push_back(record);
    return Result<Bytes>::failure("network: no connectivity");
  }
  const auto it = handlers_.find(std::string(url));
  if (it == handlers_.end()) {
    log_.push_back(record);
    return Result<Bytes>::failure("network: 404 " + std::string(url));
  }
  auto payload = it->second();
  if (!payload.has_value()) {
    log_.push_back(record);
    return Result<Bytes>::failure("network: server refused " +
                                  std::string(url));
  }
  record.succeeded = true;
  record.bytes = payload->size();
  log_.push_back(record);
  return *std::move(payload);
}

}  // namespace dydroid::os
