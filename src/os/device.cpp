#include "os/device.hpp"

#include <stdexcept>

#include "support/fault.hpp"

namespace dydroid::os {

Device::Device(DeviceConfig config)
    : vfs_(config.api_level, config.storage_capacity_bytes),
      network_(&services_),
      pm_(&vfs_) {
  // Fault-injection site: the measurement device failed to boot / is
  // unavailable (support::FaultInjector). The pipeline's stage guard maps
  // the exception to the app's crash outcome; it never tears down a worker.
  if (support::fault_fire(support::FaultSite::kDeviceBoot)) {
    throw std::runtime_error(
        support::fault_message(support::FaultSite::kDeviceBoot) +
        ": device unavailable");
  }
  // Preinstall the trusted OS-vendor native libraries the DCL logger skips
  // (paper §III-B: "skips the system binaries, such as native libraries in
  // /system/lib").
  const auto sys = Principal::system();
  (void)vfs_.write_file(sys, std::string(kSystemLibDir) + "/libc.so",
                        support::to_bytes("system"));
  (void)vfs_.write_file(sys, std::string(kSystemLibDir) + "/libandroid.so",
                        support::to_bytes("system"));
  // Default content-provider rows so privacy sources return data.
  services_.put_provider_row(kUriContacts, "Alice;+1555000001");
  services_.put_provider_row(kUriCalendar, "2016-11-12;dentist");
  services_.put_provider_row(kUriCallLog, "+1555000001;32s");
  services_.put_provider_row(kUriBrowser, "https://example.com");
  services_.put_provider_row(kUriAudio, "/mnt/sdcard/music/track01.mp3");
  services_.put_provider_row(kUriImages, "/mnt/sdcard/DCIM/img001.jpg");
  services_.put_provider_row(kUriVideo, "/mnt/sdcard/DCIM/vid001.mp4");
  services_.put_provider_row(kUriSettings, "adb_enabled=0");
  services_.put_provider_row(kUriSms, "+1555000002;hello");
  services_.put_provider_row(kUriMms, "+1555000002;photo");
}

}  // namespace dydroid::os
