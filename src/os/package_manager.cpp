#include "os/package_manager.hpp"

#include "os/vfs.hpp"
#include "support/fault.hpp"
#include "support/strings.hpp"

namespace dydroid::os {

using support::Status;

Status PackageManager::install(const apk::ApkFile& apk) {
  // No shared image available: serialize once and install that.
  return install(apk::ApkImage::from_file(apk));
}

Status PackageManager::install(const apk::ApkImage& image) {
  // Fault-injection site: install timeout / installer failure
  // (support::FaultInjector).
  if (support::fault_fire(support::FaultSite::kDeviceInstall)) {
    return Status::failure(
        support::fault_message(support::FaultSite::kDeviceInstall) +
        ": install timed out");
  }
  const apk::ApkFile& apk = image.file();
  manifest::Manifest m;
  try {
    m = apk.read_manifest();
  } catch (const support::ParseError& e) {
    return Status::failure(std::string("install: ") + e.what());
  }
  if (m.package.empty()) return Status::failure("install: empty package");

  InstalledPackage pkg;
  pkg.pkg = m.package;
  pkg.manifest = m;
  pkg.signer = apk.signer();
  pkg.apk_path = std::string(kAppDir) + "/" + m.package + ".apk";

  // The image's serialized Blob goes straight into the VFS — a refcount
  // bump, not a re-serialize.
  const auto sys = Principal::system();
  if (auto s = vfs_->write_file(sys, pkg.apk_path, image.bytes()); !s) {
    return s;
  }
  // Private data dir marker so the dir "exists".
  if (auto s = vfs_->write_file(
          sys, internal_storage_dir(m.package) + "/.installed",
          support::to_bytes(m.package));
      !s) {
    return s;
  }
  // Extract bundled native libraries, as the installer does for lib/<abi>/.
  for (const auto& name : apk.entry_names()) {
    if (name.starts_with(apk::kLibDirPrefix)) {
      const auto base = name.substr(name.rfind('/') + 1);
      const auto dest = internal_storage_dir(m.package) + "/lib/" + base;
      if (auto s = vfs_->write_file(sys, dest, *apk.get(name)); !s) return s;
    }
  }
  packages_.insert_or_assign(m.package, std::move(pkg));
  return Status();
}

Status PackageManager::uninstall(std::string_view pkg) {
  const auto it = packages_.find(pkg);
  if (it == packages_.end()) {
    return Status::failure("uninstall: not installed: " + std::string(pkg));
  }
  const auto sys = Principal::system();
  (void)vfs_->delete_file(sys, it->second.apk_path);
  for (const auto& path : vfs_->list_dir(internal_storage_dir(pkg))) {
    (void)vfs_->delete_file(sys, path);
  }
  packages_.erase(it);
  return Status();
}

const InstalledPackage* PackageManager::find(std::string_view pkg) const {
  const auto it = packages_.find(pkg);
  if (it == packages_.end()) return nullptr;
  return &it->second;
}

std::vector<std::string> PackageManager::installed_packages() const {
  std::vector<std::string> out;
  out.reserve(packages_.size());
  for (const auto& [name, _] : packages_) out.push_back(name);
  return out;
}

}  // namespace dydroid::os
