// Virtual filesystem with Android path & permission semantics.
//
// Layout mirrors the measurement device in the paper:
//   /system/lib/...              OS-vendor native libraries (trusted)
//   /data/app/<pkg>.apk          installed packages
//   /data/data/<pkg>/...         per-app private internal storage
//   /mnt/sdcard/...              shared external storage
//
// Writability rules implement the vulnerability model of §III-B(b):
//   - internal storage is writable only by its owning app,
//   - external storage is writable by ANY app before Android 4.4 (API 19),
//     and by apps holding WRITE_EXTERNAL_STORAGE from 4.4 on.
// Reads are unrestricted (pre-scoped-storage world-readable files), which is
// precisely what makes "load from another app's internal storage" possible.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "support/blob.hpp"
#include "support/bytes.hpp"
#include "support/error.hpp"

namespace dydroid::os {

/// Canonical path prefixes.
std::string internal_storage_dir(std::string_view pkg);  // /data/data/<pkg>
inline constexpr std::string_view kExternalStorageDir = "/mnt/sdcard";
inline constexpr std::string_view kSystemLibDir = "/system/lib";
inline constexpr std::string_view kAppDir = "/data/app";

/// Principal performing a filesystem operation.
struct Principal {
  std::string pkg;                  // "" = the system itself
  bool has_write_external = false;  // holds WRITE_EXTERNAL_STORAGE

  [[nodiscard]] bool is_system() const { return pkg.empty(); }
  static Principal system() { return Principal{}; }
};

/// Classification of a path by who may write it (used by the vulnerability
/// analyzer and by write permission checks).
enum class PathDomain {
  kSystem,            // /system/...
  kAppPrivate,        // /data/data/<pkg>/... (owner in `owner`)
  kExternalStorage,   // /mnt/sdcard/...
  kOther,             // anything else (e.g. /data/app, /tmp)
};

struct PathInfo {
  PathDomain domain = PathDomain::kOther;
  std::string owner;  // package owning an app-private path
};

/// Classify a path. Paths must be absolute.
PathInfo classify_path(std::string_view path);

class Vfs {
 public:
  /// `os_api_level` drives the external-storage writability rule.
  /// `capacity_bytes` = 0 means unlimited.
  explicit Vfs(int os_api_level = 18, std::uint64_t capacity_bytes = 0)
      : api_level_(os_api_level), capacity_(capacity_bytes) {}

  [[nodiscard]] int api_level() const { return api_level_; }
  void set_api_level(int level) { api_level_ = level; }

  /// Write (create or truncate). Fails on permission or capacity. Files are
  /// stored as immutable Blobs: a write replaces the whole buffer, it never
  /// mutates in place, so views handed out by read_file() are snapshots.
  support::Status write_file(const Principal& who, std::string_view path,
                             support::Blob data);
  support::Status write_file(const Principal& who, std::string_view path,
                             support::Bytes data);
  /// A refcounted view of the file's current contents, or nullopt if absent.
  /// The view stays valid — and keeps reflecting the contents at read time —
  /// even if the file is later overwritten or deleted.
  [[nodiscard]] std::optional<support::Blob> read_file(
      std::string_view path) const;
  [[nodiscard]] bool exists(std::string_view path) const;
  support::Status delete_file(const Principal& who, std::string_view path);
  support::Status rename(const Principal& who, std::string_view from,
                         std::string_view to);

  /// Whether `who` may write `path` under the current API level.
  [[nodiscard]] bool can_write(const Principal& who,
                               std::string_view path) const;

  /// All file paths under a directory prefix (inclusive of nested dirs).
  [[nodiscard]] std::vector<std::string> list_dir(
      std::string_view dir_prefix) const;

  [[nodiscard]] std::uint64_t used_bytes() const { return used_; }
  [[nodiscard]] std::uint64_t capacity_bytes() const { return capacity_; }
  [[nodiscard]] std::size_t file_count() const { return files_.size(); }

 private:
  int api_level_;
  std::uint64_t capacity_;
  std::uint64_t used_ = 0;
  std::map<std::string, support::Blob, std::less<>> files_;
};

}  // namespace dydroid::os
