#include "os/services.hpp"

// SystemServices is header-only state; this TU anchors the library target.
