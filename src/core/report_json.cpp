#include "core/report_json.hpp"

#include <sstream>

#include "support/hash.hpp"
#include "support/strings.hpp"

namespace dydroid::core {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += support::format("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

std::string quoted(std::string_view s) {
  return "\"" + json_escape(s) + "\"";
}

void write_event(std::ostringstream& out, const DclEvent& event,
                 const char* indent) {
  out << indent << "{\n";
  out << indent << "  \"kind\": " << quoted(code_kind_name(event.kind))
      << ",\n";
  out << indent << "  \"paths\": [";
  for (std::size_t i = 0; i < event.paths.size(); ++i) {
    if (i != 0) out << ", ";
    out << quoted(event.paths[i]);
  }
  out << "],\n";
  if (!event.optimized_dir.empty()) {
    out << indent << "  \"optimized_dir\": " << quoted(event.optimized_dir)
        << ",\n";
  }
  out << indent << "  \"call_site\": " << quoted(event.call_site_class)
      << ",\n";
  out << indent << "  \"entity\": " << quoted(entity_name(event.entity))
      << ",\n";
  out << indent << "  \"system_binary\": "
      << (event.system_binary ? "true" : "false") << ",\n";
  out << indent << "  \"integrity_check_before\": "
      << (event.integrity_check_before ? "true" : "false") << ",\n";
  out << indent << "  \"stack\": "
      << quoted(vm::format_stack_trace(event.trace)) << "\n";
  out << indent << "}";
}

void write_binary(std::ostringstream& out, const BinaryReport& binary,
                  const char* indent) {
  out << indent << "{\n";
  out << indent << "  \"path\": " << quoted(binary.binary.path) << ",\n";
  out << indent << "  \"kind\": "
      << quoted(code_kind_name(binary.binary.kind)) << ",\n";
  out << indent << "  \"size\": " << binary.binary.bytes.size() << ",\n";
  out << indent << "  \"sha256\": \""
      << support::sha256(binary.binary.bytes.span()).hex() << "\",\n";
  out << indent << "  \"call_site\": " << quoted(binary.binary.call_site_class)
      << ",\n";
  out << indent << "  \"entity\": "
      << quoted(entity_name(binary.binary.entity)) << ",\n";
  out << indent << "  \"origin_url\": "
      << (binary.origin_url ? quoted(*binary.origin_url) : "null") << ",\n";
  out << indent << "  \"malware\": ";
  if (binary.malware.has_value()) {
    out << "{\"family\": " << quoted(binary.malware->family)
        << ", \"score\": " << support::format("%.4f", binary.malware->score)
        << "}";
  } else {
    out << "null";
  }
  out << ",\n";
  out << indent << "  \"privacy_leaks\": [";
  for (std::size_t i = 0; i < binary.privacy.leaks.size(); ++i) {
    const auto& leak = binary.privacy.leaks[i];
    if (i != 0) out << ", ";
    out << "{\"type\": " << quoted(privacy::data_type_name(leak.type))
        << ", \"category\": "
        << quoted(privacy::category_name(privacy::category_of(leak.type)))
        << ", \"sink\": " << quoted(leak.sink_api)
        << ", \"class\": " << quoted(leak.sink_class) << "}";
  }
  out << "]\n";
  out << indent << "}";
}

}  // namespace

std::string report_to_json(const AppReport& report) {
  std::ostringstream out;
  out << "{\n";
  out << "  \"package\": " << quoted(report.package) << ",\n";
  out << "  \"min_sdk\": " << report.min_sdk << ",\n";
  out << "  \"decompile_failed\": "
      << (report.decompile_failed ? "true" : "false") << ",\n";
  out << "  \"static_dcl\": {\"dex\": "
      << (report.static_dcl.dex_dcl ? "true" : "false")
      << ", \"native\": " << (report.static_dcl.native_dcl ? "true" : "false")
      << "},\n";
  out << "  \"obfuscation\": {"
      << "\"lexical\": " << (report.obfuscation.lexical ? "true" : "false")
      << ", \"reflection\": "
      << (report.obfuscation.reflection ? "true" : "false")
      << ", \"native\": "
      << (report.obfuscation.native_code ? "true" : "false")
      << ", \"dex_encryption\": "
      << (report.obfuscation.dex_encryption ? "true" : "false")
      << ", \"anti_decompilation\": "
      << (report.obfuscation.anti_decompilation ? "true" : "false") << "},\n";
  out << "  \"status\": " << quoted(dynamic_status_name(report.status))
      << ",\n";
  if (!report.crash_message.empty()) {
    out << "  \"crash_message\": " << quoted(report.crash_message) << ",\n";
  }
  out << "  \"storage_recovered\": "
      << (report.storage_recovered ? "true" : "false") << ",\n";

  out << "  \"events\": [\n";
  for (std::size_t i = 0; i < report.events.size(); ++i) {
    write_event(out, report.events[i], "    ");
    out << (i + 1 < report.events.size() ? ",\n" : "\n");
  }
  out << "  ],\n";

  out << "  \"binaries\": [\n";
  for (std::size_t i = 0; i < report.binaries.size(); ++i) {
    write_binary(out, report.binaries[i], "    ");
    out << (i + 1 < report.binaries.size() ? ",\n" : "\n");
  }
  out << "  ],\n";

  out << "  \"vulnerabilities\": [";
  for (std::size_t i = 0; i < report.vulns.size(); ++i) {
    const auto& v = report.vulns[i];
    if (i != 0) out << ", ";
    out << "{\"kind\": " << quoted(code_kind_name(v.kind))
        << ", \"category\": " << quoted(vuln_category_name(v.category))
        << ", \"path\": " << quoted(v.path) << "}";
  }
  out << "]\n";
  out << "}\n";
  return out.str();
}

}  // namespace dydroid::core
