#include "core/engine.hpp"

#include "support/log.hpp"

namespace dydroid::core {
namespace {

RunResult run_once(os::Device& device, const apk::ApkFile& apk,
                   const manifest::Manifest& manifest, support::Rng& rng,
                   const EngineConfig& config) {
  RunResult result;
  vm::AppContext app;
  app.manifest = manifest;
  vm::Vm vm(device, std::move(app), config.limits);
  const auto loaded = vm.load_app(apk);
  if (!loaded) {
    result.monkey.outcome = monkey::Outcome::kCrash;
    result.monkey.crash_message = loaded.error();
    return result;
  }
  CodeInterceptor interceptor(vm);
  result.monkey = monkey::run_monkey(vm, config.monkey, rng);
  result.events = interceptor.events();
  result.binaries = interceptor.binaries();
  result.tracker = interceptor.tracker();
  result.blocked_mutations = interceptor.blocked_mutations();
  result.vm_events = vm.events();
  return result;
}

}  // namespace

RunResult run_app(os::Device& device, const apk::ApkFile& apk,
                  const manifest::Manifest& manifest, support::Rng& rng,
                  const EngineConfig& config) {
  auto result = run_once(device, apk, manifest, rng, config);
  if (result.monkey.outcome == monkey::Outcome::kCrash &&
      result.monkey.crash_message.find("storage full") != std::string::npos) {
    // Automatic recovery: clear the app's cache (odex staging and ad
    // payload caches dominate usage) and retry once.
    const auto sys = os::Principal::system();
    const auto cache = os::internal_storage_dir(manifest.package) + "/cache";
    for (const auto& path : device.vfs().list_dir(cache)) {
      (void)device.vfs().delete_file(sys, path);
    }
    support::log_info("engine", "storage full: cleared cache for " +
                                    manifest.package + ", retrying");
    result = run_once(device, apk, manifest, rng, config);
    result.storage_recovered = true;
  }
  return result;
}

}  // namespace dydroid::core
