// JSON serialization of AppReport — the artifact a measurement campaign
// stores per app (the paper's equivalent of its analysis logs on external
// storage). Hand-rolled writer: no third-party JSON dependency.
#pragma once

#include <string>

#include "core/pipeline.hpp"

namespace dydroid::core {

/// Render a full per-app report as a JSON object (pretty-printed, stable
/// key order). Binary payload bytes are summarized (size + FNV hash), not
/// embedded.
std::string report_to_json(const AppReport& report);

/// Escape a string for inclusion in a JSON literal.
std::string json_escape(std::string_view s);

}  // namespace dydroid::core
