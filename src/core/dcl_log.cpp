#include "core/dcl_log.hpp"

#include "support/strings.hpp"

namespace dydroid::core {

std::string_view code_kind_name(CodeKind kind) {
  return kind == CodeKind::Dex ? "DEX" : "Native";
}

std::string_view entity_name(Entity entity) {
  return entity == Entity::Own ? "Own" : "3rd-party";
}

std::string call_site_of(const vm::StackTrace& trace) {
  for (const auto& frame : trace) {
    if (!vm::is_framework_class(frame.class_name)) return frame.class_name;
  }
  return "";
}

Entity classify_entity(std::string_view call_site_class,
                       std::string_view app_package) {
  const auto pkg = support::package_of(call_site_class);
  return support::package_has_prefix(pkg, app_package) ? Entity::Own
                                                       : Entity::ThirdParty;
}

}  // namespace dydroid::core
