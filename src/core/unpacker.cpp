#include "core/unpacker.hpp"

#include "analysis/decompiler.hpp"
#include "core/engine.hpp"
#include "obfuscation/detector.hpp"
#include "obfuscation/packer.hpp"
#include "obfuscation/poison.hpp"

namespace dydroid::core {

using support::Result;

Result<UnpackResult> unpack_packed_app(
    std::span<const std::uint8_t> packed_apk, std::uint64_t seed) {
  auto ir = analysis::decompile(packed_apk);
  if (!ir.ok()) {
    return Result<UnpackResult>::failure("unpack: " + ir.error());
  }
  if (!obfuscation::detect_dex_encryption(ir.value())) {
    return Result<UnpackResult>::failure(
        "unpack: app does not match the packer pattern");
  }

  // Sandbox run: let the container decrypt and load, intercept the payload.
  os::Device device;
  apk::ApkFile apk;
  try {
    apk = apk::ApkFile::deserialize(packed_apk, apk::ParseMode::kLenient);
  } catch (const support::ParseError& e) {
    return Result<UnpackResult>::failure(std::string("unpack: ") + e.what());
  }
  if (const auto installed = device.install(apk); !installed) {
    return Result<UnpackResult>::failure("unpack: " + installed.error());
  }
  auto man = apk.read_manifest();
  support::Rng rng(seed);
  EngineConfig config;
  const auto run = run_app(device, apk, man, rng, config);

  // The largest intercepted dex-format payload is the decrypted bytecode
  // (containers may load auxiliary dexes too). A post-decryption crash is
  // tolerable — the dump already happened, as with real unpacking sandboxes.
  const InterceptedBinary* best = nullptr;
  for (const auto& binary : run.binaries) {
    if (binary.kind != CodeKind::Dex) continue;
    if (!dex::looks_like_dex(binary.bytes)) continue;
    if (best == nullptr || binary.bytes.size() > best->bytes.size()) {
      best = &binary;
    }
  }
  if (best == nullptr) {
    if (run.monkey.outcome == monkey::Outcome::kCrash) {
      return Result<UnpackResult>::failure("unpack: app crashed early: " +
                                           run.monkey.crash_message);
    }
    return Result<UnpackResult>::failure(
        "unpack: no dex payload intercepted");
  }

  // Reassemble: restore the payload as classes.dex, drop the container's
  // artifacts, clear android:name.
  UnpackResult result;
  result.payload_path = best->path;
  result.apk = apk;
  result.apk.put(apk::kClassesDexEntry, best->bytes);
  result.apk.remove(std::string(apk::kAssetsDirPrefix) +
                    std::string(obfuscation::kEncryptedPayloadAsset));
  // Drop any shield stub library entries.
  for (const auto& name : result.apk.entry_names()) {
    if (name.starts_with(apk::kLibDirPrefix) &&
        name.find("shield") != std::string::npos) {
      result.apk.remove(name);
    }
  }
  // Drop the anti-repackaging trap if present so the output is tool-clean.
  result.apk.remove(std::string(obfuscation::kTrapEntry));
  man.application_name.clear();
  result.apk.write_manifest(man);
  result.apk.sign("dydroid-unpacked");
  return result;
}

}  // namespace dydroid::core
