// Runtime unpacker — the DexHunter/AppSpear analogue (paper §VI refs
// [64, 67]: "bytecode decrypting and dex reassembling for packed android
// malware"). Packed apps defeat static analysis, but the container must
// hand the VM real bytecode eventually; running the app under DyDroid's
// interceptor captures the decrypted dex, from which the original APK is
// reassembled: original classes.dex restored, container artifacts dropped,
// android:name cleared.
#pragma once

#include "apk/apk.hpp"
#include "support/error.hpp"

namespace dydroid::core {

struct UnpackResult {
  apk::ApkFile apk;          // reassembled, analyzable package
  std::string payload_path;  // where the decrypted dex was intercepted
};

/// Run the packed app in a sandbox, intercept the decrypted bytecode and
/// reassemble the original APK. Fails when the app is not recognized as
/// packed, cannot be exercised, or never loads a recoverable dex payload.
support::Result<UnpackResult> unpack_packed_app(
    std::span<const std::uint8_t> packed_apk, std::uint64_t seed = 1);

}  // namespace dydroid::core
