#include "core/stages.hpp"

#include "analysis/rewriter.hpp"
#include "support/log.hpp"
#include "support/trace.hpp"

namespace dydroid::core {

// ---- StaticStage -----------------------------------------------------------

StageResult StaticStage::run(AnalysisContext& ctx) const {
  auto ir = [&] {
    // Nested "phase" span: decompilation dominates the static stage; the
    // trace shows it as a child of the enclosing "stage"/"static" span.
    // This is the pipeline's single container parse: the resulting image
    // is shared by every later stage (rewrite, install, VM).
    TRACE_SPAN("phase", "static.decompile");
    try {
      ctx.image = apk::ApkImage::parse(ctx.apk, apk::ParseMode::kLenient);
    } catch (const support::ParseError& e) {
      return support::Result<analysis::Ir>::failure(
          std::string("decompile: ") + e.what());
    }
    return analysis::decompile(ctx.image);
  }();
  if (!ir.ok()) {
    ctx.report.decompile_failed = true;
    ctx.report.obfuscation.anti_decompilation = true;
    return StageAction::kStop;
  }
  ctx.ir = std::move(ir).take();
  const auto& decompiled = *ctx.ir;
  ctx.report.package = decompiled.manifest.package;
  ctx.report.min_sdk = decompiled.manifest.min_sdk;
  {
    TRACE_SPAN("phase", "static.scan");
    ctx.report.obfuscation = obfuscation::analyze_obfuscation(decompiled);
    if (decompiled.classes_dex.has_value()) {
      ctx.report.static_dcl = scan_dcl_apis(*decompiled.classes_dex);
    }
  }

  if (!ctx.options->dynamic_analysis || !ctx.report.static_dcl.any()) {
    return StageAction::kStop;  // DCL-free apps are not exercised (paper §V-A)
  }
  return StageAction::kContinue;
}

// ---- RewriteStage ----------------------------------------------------------

StageResult RewriteStage::run(AnalysisContext& ctx) const {
  // The measurement log lives on external storage; inject the permission if
  // missing. Anti-repackaging apps crash the (strict) repacker here.
  if (ctx.ir->manifest.has_permission(manifest::kWriteExternalStorage)) {
    return StageAction::kContinue;
  }
  // Custom stage lists may reach here without StaticStage's parse; fall
  // back to parsing the input blob once so the rewriter always gets an
  // image (never a second parse on the canonical path).
  apk::ApkImage image = ctx.image;
  if (!image.valid()) {
    try {
      image = apk::ApkImage::parse(ctx.apk, apk::ParseMode::kLenient);
    } catch (const support::ParseError& e) {
      ctx.report.status = DynamicStatus::kRewritingFailure;
      ctx.report.crash_message = std::string("rewrite: ") + e.what();
      return StageAction::kStop;
    }
  }
  auto result = analysis::rewrite_with_permission(
      image, manifest::kWriteExternalStorage);
  if (!result.ok()) {
    ctx.report.status = DynamicStatus::kRewritingFailure;
    ctx.report.crash_message = result.error();
    return StageAction::kStop;
  }
  ctx.run_image = std::move(result).take();
  return StageAction::kContinue;
}

// ---- DynamicStage ----------------------------------------------------------

StageResult DynamicStage::run(AnalysisContext& ctx) const {
  std::optional<os::Device> device;
  {
    TRACE_SPAN("phase", "dynamic.boot");
    device.emplace(ctx.options->device);
    if (const auto& scenario = ctx.scenario(); scenario) scenario(*device);
    ctx.options->runtime.apply(device->services());
  }

  // The image to exercise: the rewritten one if RewriteStage produced it,
  // otherwise StaticStage's shared parse. Custom stage lists that skip both
  // fall back to parsing the input blob here — still routed through the
  // stage status, so a malformed (e.g. packer-damaged) container is a
  // per-app crash outcome, never an exception escaping the corpus driver.
  apk::ApkImage img = ctx.run_image.valid() ? ctx.run_image : ctx.image;
  manifest::Manifest man;
  {
    TRACE_SPAN("phase", "dynamic.install");
    try {
      if (!img.valid()) {
        img = apk::ApkImage::parse(ctx.apk, apk::ParseMode::kLenient);
      }
      man = img.file().read_manifest();
    } catch (const support::ParseError& e) {
      ctx.report.status = DynamicStatus::kCrash;
      ctx.report.crash_message = e.what();
      return StageAction::kStop;
    }
    if (const auto installed = device->install(img); !installed) {
      ctx.report.status = DynamicStatus::kCrash;
      ctx.report.crash_message = installed.error();
      return StageAction::kStop;
    }
  }

  support::Rng rng(ctx.seed);
  {
    TRACE_SPAN("phase", "dynamic.fuzz");
    ctx.run = run_app(*device, img.file(), man, rng, ctx.options->engine);
  }
  auto& run = *ctx.run;
  ctx.report.storage_recovered = run.storage_recovered;
  ctx.report.crash_message = run.monkey.crash_message;
  switch (run.monkey.outcome) {
    case monkey::Outcome::kNoActivity:
      ctx.report.status = DynamicStatus::kNoActivity;
      break;
    case monkey::Outcome::kCrash:
      ctx.report.status = DynamicStatus::kCrash;
      break;
    case monkey::Outcome::kExercised:
      ctx.report.status = DynamicStatus::kExercised;
      break;
  }
  ctx.report.events = std::move(run.events);
  ctx.report.vm_events = std::move(run.vm_events);
  return StageAction::kContinue;
}

// ---- PerBinaryStage --------------------------------------------------------

StageResult PerBinaryStage::run(AnalysisContext& ctx) const {
  if (!ctx.run.has_value()) return StageAction::kContinue;
  auto& run = *ctx.run;
  for (auto& binary : run.binaries) {
    BinaryReport br;
    br.origin_url = run.tracker.origin_url(binary.path);
    if (ctx.options->detector != nullptr) {
      br.malware = ctx.options->detector->scan(binary.bytes);
    }
    if (binary.kind == CodeKind::Dex) {
      try {
        if (dex::looks_like_dex(binary.bytes)) {
          br.privacy =
              privacy::analyze_privacy(dex::DexFile::deserialize(binary.bytes));
        } else if (apk::looks_like_apk(binary.bytes)) {
          const auto pkg = apk::ApkFile::deserialize(binary.bytes);
          if (auto inner = pkg.read_classes_dex()) {
            br.privacy = privacy::analyze_privacy(*inner);
          }
        }
      } catch (const support::ParseError& e) {
        support::log_warn("pipeline",
                          std::string("privacy: unparsable binary: ") +
                              e.what());
      }
    }
    br.binary = std::move(binary);
    ctx.report.binaries.push_back(std::move(br));
  }
  return StageAction::kContinue;
}

// ---- VulnStage -------------------------------------------------------------

StageResult VulnStage::run(AnalysisContext& ctx) const {
  ctx.report.vulns = analyze_vulnerabilities(ctx.report.events,
                                             ctx.report.package,
                                             ctx.report.min_sdk);
  return StageAction::kContinue;
}

std::vector<std::unique_ptr<const Stage>> default_stages() {
  std::vector<std::unique_ptr<const Stage>> stages;
  stages.push_back(std::make_unique<StaticStage>());
  stages.push_back(std::make_unique<RewriteStage>());
  stages.push_back(std::make_unique<DynamicStage>());
  stages.push_back(std::make_unique<PerBinaryStage>());
  stages.push_back(std::make_unique<VulnStage>());
  return stages;
}

}  // namespace dydroid::core
