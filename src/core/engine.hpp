// App Execution Engine (Figure 1): boots one app inside a fresh MiniDalvik
// VM on a SimDevice, attaches the interceptor, drives it with MiniMonkey,
// and recovers automatically from environment failures such as the device
// storage running out (paper §I: "Various types of exceptions are
// automatically handled").
#pragma once

#include <memory>

#include "core/interceptor.hpp"
#include "monkey/monkey.hpp"

namespace dydroid::core {

struct EngineConfig {
  monkey::MonkeyConfig monkey;
  vm::VmLimits limits;
};

struct RunResult {
  monkey::MonkeyResult monkey;
  std::vector<DclEvent> events;
  std::vector<InterceptedBinary> binaries;
  std::vector<vm::VmEvent> vm_events;
  DownloadTracker tracker;
  std::size_t blocked_mutations = 0;
  /// The engine recovered from a full device by clearing app caches and
  /// re-running once.
  bool storage_recovered = false;
};

/// Execute an installed app. `apk` must already be installed on `device`.
RunResult run_app(os::Device& device, const apk::ApkFile& apk,
                  const manifest::Manifest& manifest, support::Rng& rng,
                  const EngineConfig& config = {});

}  // namespace dydroid::core
