// Download tracker (paper Table I): a flow graph with URL sources and File
// sinks. Nodes are objects identified by type + hash code (VM object id) or
// files identified by path; edges are the instrumented flows
// URL→InputStream→Buffer→OutputStream→File plus stream wrapping and
// File→File copies/renames. Querying a file's origin URL answers the
// provenance question: locally packed vs. remotely fetched.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "vm/instrumentation.hpp"

namespace dydroid::core {

class DownloadTracker {
 public:
  void add_url(const vm::FlowNode& node);
  void add_flow(const vm::FlowNode& from, const vm::FlowNode& to);

  /// The URL a file's content was (transitively) fetched from, or nullopt
  /// for locally produced files.
  [[nodiscard]] std::optional<std::string> origin_url(
      const std::string& file_path) const;

  /// Every file path reachable from some URL.
  [[nodiscard]] std::vector<std::string> remote_files() const;

  [[nodiscard]] std::size_t node_count() const { return reverse_.size(); }
  [[nodiscard]] std::size_t edge_count() const { return edges_; }

 private:
  static std::string key_of(const vm::FlowNode& node);

  // Reverse adjacency: to-key -> set of from-keys (provenance walks
  // backwards from the file).
  std::map<std::string, std::set<std::string>> reverse_;
  std::map<std::string, std::string> url_of_node_;  // url-node key -> spec
  std::size_t edges_ = 0;
};

}  // namespace dydroid::core
