#include "core/dynamic_taint.hpp"

#include "core/dcl_log.hpp"

namespace dydroid::core {

DynamicTaintTracker::DynamicTaintTracker(vm::Vm& vm) : vm_(&vm) {
  auto& hooks = vm.instrumentation();

  const auto prev_source = hooks.taint_source;
  hooks.taint_source = [prev_source](const std::string& cls,
                                     const std::string& method,
                                     const std::vector<vm::Value>& args)
      -> std::uint32_t {
    std::uint32_t mask = prev_source ? prev_source(cls, method, args) : 0;
    if (const auto type = privacy::source_api(cls, method)) {
      mask |= privacy::mask_of(*type);
    }
    // Content providers: dynamic analysis sees the CONCRETE URI.
    if (cls == "android.content.ContentResolver" && method == "query" &&
        !args.empty() && args[0].is_str()) {
      if (const auto type = privacy::source_uri(args[0].as_str())) {
        mask |= privacy::mask_of(*type);
      }
    }
    return mask;
  };

  const auto prev_call = hooks.on_intrinsic_call;
  hooks.on_intrinsic_call = [this, prev_call](
                                const std::string& cls,
                                const std::string& method,
                                const std::vector<vm::Value>& args) {
    if (prev_call) prev_call(cls, method, args);
    if (!privacy::is_sink_api(cls, method)) return;
    std::uint32_t mask = 0;
    for (const auto& a : args) mask |= a.taint();
    if (mask == 0) return;
    DynamicLeak leak;
    leak.mask = mask;
    leak.sink_api = cls + "." + method;
    leak.call_site_class = call_site_of(vm_->current_stack_trace());
    leaks_.push_back(std::move(leak));
  };
}

privacy::TaintMask DynamicTaintTracker::leaked_mask() const {
  privacy::TaintMask mask = 0;
  for (const auto& leak : leaks_) mask |= leak.mask;
  return mask;
}

}  // namespace dydroid::core
