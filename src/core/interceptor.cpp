#include "core/interceptor.hpp"

#include "support/fault.hpp"
#include "support/log.hpp"
#include "support/strings.hpp"

namespace dydroid::core {

CodeInterceptor::CodeInterceptor(vm::Vm& vm)
    : vm_(&vm), app_package_(vm.app().package()) {
  auto& hooks = vm.instrumentation();

  hooks.on_dex_load = [this](vm::LoaderKind, const std::string& dex_path,
                             const std::string& optimized_dir,
                             const vm::StackTrace& trace) {
    on_load(CodeKind::Dex, support::split(dex_path, ':'), optimized_dir,
            trace);
  };

  hooks.on_native_load = [this](const std::string& path,
                                const vm::StackTrace& trace) {
    on_load(CodeKind::Native, {path}, "", trace);
  };

  hooks.allow_file_delete = [this](const std::string& path) {
    if (queue_.count(path) != 0) {
      ++blocked_;
      return false;  // silent failure (paper §III-B)
    }
    return true;
  };

  hooks.allow_file_rename = [this](const std::string& from,
                                   const std::string& to) {
    if (queue_.count(from) != 0 || queue_.count(to) != 0) {
      ++blocked_;
      return false;
    }
    return true;
  };

  hooks.on_url_created = [this](const vm::FlowNode& node) {
    tracker_.add_url(node);
  };

  hooks.on_flow = [this](const vm::FlowNode& from, const vm::FlowNode& to) {
    tracker_.add_flow(from, to);
  };

  hooks.on_api_call = [this](const std::string& cls,
                             const std::string& method) {
    if (cls == "java.security.MessageDigest" && method == "digest") {
      digest_seen_ = true;
    }
  };
}

void CodeInterceptor::on_load(CodeKind kind,
                              const std::vector<std::string>& paths,
                              const std::string& optimized_dir,
                              const vm::StackTrace& trace) {
  DclEvent event;
  event.kind = kind;
  event.optimized_dir = optimized_dir;
  event.trace = trace;
  event.call_site_class = call_site_of(trace);
  event.entity = classify_entity(event.call_site_class, app_package_);
  event.integrity_check_before = digest_seen_;

  for (const auto& path : paths) {
    if (path.empty()) continue;
    event.paths.push_back(path);
    if (path.starts_with(os::kSystemLibDir)) {
      // Trusted OS-vendor binaries: logged, not intercepted.
      event.system_binary = true;
      continue;
    }
    // Protect the file from deletion/renaming, then snapshot it.
    queue_.insert(path);
    if (snapshotted_.insert(path).second) {
      if (const auto bytes = vm_->device().vfs().read_file(path)) {
        // Fault-injection site: the snapshot copy suffers a short write and
        // is discarded — the event is still logged, but the binary is lost
        // to the per-binary analyses (support::FaultInjector).
        if (support::fault_fire(support::FaultSite::kInterceptorIo)) {
          support::log_warn("interceptor",
                            "snapshot short write, dropped: " + path);
        } else {
          InterceptedBinary binary;
          binary.kind = kind;
          binary.path = path;
          binary.bytes = *bytes;
          binary.call_site_class = event.call_site_class;
          binary.entity = event.entity;
          binaries_.push_back(std::move(binary));
        }
      }
    }
  }
  events_.push_back(std::move(event));
}

}  // namespace dydroid::core
