#include "core/pipeline.hpp"

#include "core/stages.hpp"
#include "support/log.hpp"
#include "support/trace.hpp"

namespace dydroid::core {

void RuntimeConfig::apply(os::SystemServices& services) const {
  if (time_ms.has_value()) services.set_time_ms(*time_ms);
  services.set_airplane_mode(airplane_mode);
  services.set_wifi_enabled(wifi_enabled);
  services.set_location_enabled(location_enabled);
}

std::string_view dynamic_status_name(DynamicStatus status) {
  switch (status) {
    case DynamicStatus::kNotRun: return "not-run";
    case DynamicStatus::kRewritingFailure: return "rewriting-failure";
    case DynamicStatus::kNoActivity: return "no-activity";
    case DynamicStatus::kCrash: return "crash";
    case DynamicStatus::kExercised: return "exercised";
  }
  return "?";
}

bool AppReport::intercepted(CodeKind kind) const {
  for (const auto& b : binaries) {
    if (b.binary.kind == kind) return true;
  }
  return false;
}

AppReport::EntityUse AppReport::entity_use(CodeKind kind) const {
  EntityUse use;
  for (const auto& event : events) {
    if (event.kind != kind || event.system_binary) continue;
    if (event.entity == Entity::Own) {
      use.own = true;
    } else {
      use.third_party = true;
    }
  }
  return use;
}

std::vector<const BinaryReport*> AppReport::remote_loaded() const {
  std::vector<const BinaryReport*> out;
  for (const auto& b : binaries) {
    if (b.origin_url.has_value()) out.push_back(&b);
  }
  return out;
}

std::vector<const BinaryReport*> AppReport::malware_loaded() const {
  std::vector<const BinaryReport*> out;
  for (const auto& b : binaries) {
    if (b.malware.has_value()) out.push_back(&b);
  }
  return out;
}

DyDroid::DyDroid(PipelineOptions options)
    : options_(std::move(options)), stages_(default_stages()) {}

DyDroid::DyDroid(PipelineOptions options,
                 std::vector<std::unique_ptr<const Stage>> stages)
    : options_(std::move(options)), stages_(std::move(stages)) {}

DyDroid::~DyDroid() = default;
DyDroid::DyDroid(DyDroid&&) noexcept = default;
DyDroid& DyDroid::operator=(DyDroid&&) noexcept = default;

std::vector<std::string_view> DyDroid::stage_names() const {
  std::vector<std::string_view> names;
  names.reserve(stages_.size());
  for (const auto& stage : stages_) names.push_back(stage->name());
  return names;
}

namespace {

/// Run one stage, converting any escaping exception into a stage failure.
/// This is the no-exceptions boundary the corpus worker threads rely on.
/// Each invocation opens exactly one "stage"-category span — the unit of
/// the per-(app, stage, attempt) accounting in docs/OBSERVABILITY.md.
StageResult run_stage_guarded(const Stage& stage, AnalysisContext& ctx) {
  TRACE_SPAN("stage", stage.name());
  try {
    return stage.run(ctx);
  } catch (const std::exception& e) {
    return StageResult::failure(std::string(stage.name()) + ": " + e.what());
  } catch (...) {
    return StageResult::failure(std::string(stage.name()) +
                                ": unknown exception");
  }
}

}  // namespace

AppReport DyDroid::analyze(support::Blob apk, std::uint64_t seed) const {
  AnalysisRequest request;
  request.apk = std::move(apk);
  request.seed = seed;
  return analyze(request);
}

AppReport DyDroid::analyze(std::span<const std::uint8_t> apk_bytes,
                           std::uint64_t seed) const {
  return analyze(support::Blob::copy_of(apk_bytes), seed);
}

AppReport DyDroid::analyze(const AnalysisRequest& request) const {
  AnalysisContext ctx;
  ctx.apk = request.apk;
  ctx.seed = request.seed;
  ctx.options = &options_;
  ctx.scenario_override = request.scenario_setup;

  // Install the per-app fault session for this thread (docs/FAULTS.md):
  // decisions derive from (seed, attempt), so an injected failure is
  // reproducible from the app's corpus seed under any worker count. When no
  // plan is configured the ambient session is left untouched, so callers
  // (tests) may install their own scope around analyze().
  std::optional<support::FaultSession> fault_session;
  if (options_.faults != nullptr && !options_.faults->empty()) {
    fault_session.emplace(
        *options_.faults,
        support::fault_session_seed(request.seed, request.attempt));
  }
  const support::FaultScope fault_scope(
      fault_session.has_value() ? &*fault_session
                                : support::current_fault_session());

  for (const auto& stage : stages_) {
    const StageResult result = run_stage_guarded(*stage, ctx);
    if (!result.ok()) {
      // Unexpected internal failure: record it as a per-app crash outcome
      // so the batch keeps going (a worker thread never unwinds).
      ctx.report.status = DynamicStatus::kCrash;
      ctx.report.crash_message = result.error();
      support::log_warn("pipeline", "stage failed: " + result.error());
      break;
    }
    if (result.value() == StageAction::kStop) break;
  }
  return std::move(ctx.report);
}

}  // namespace dydroid::core
