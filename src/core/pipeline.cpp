#include "core/pipeline.hpp"

#include "analysis/decompiler.hpp"
#include "analysis/rewriter.hpp"
#include "support/log.hpp"

namespace dydroid::core {

void RuntimeConfig::apply(os::SystemServices& services) const {
  if (time_ms.has_value()) services.set_time_ms(*time_ms);
  services.set_airplane_mode(airplane_mode);
  services.set_wifi_enabled(wifi_enabled);
  services.set_location_enabled(location_enabled);
}

std::string_view dynamic_status_name(DynamicStatus status) {
  switch (status) {
    case DynamicStatus::kNotRun: return "not-run";
    case DynamicStatus::kRewritingFailure: return "rewriting-failure";
    case DynamicStatus::kNoActivity: return "no-activity";
    case DynamicStatus::kCrash: return "crash";
    case DynamicStatus::kExercised: return "exercised";
  }
  return "?";
}

bool AppReport::intercepted(CodeKind kind) const {
  for (const auto& b : binaries) {
    if (b.binary.kind == kind) return true;
  }
  return false;
}

AppReport::EntityUse AppReport::entity_use(CodeKind kind) const {
  EntityUse use;
  for (const auto& event : events) {
    if (event.kind != kind || event.system_binary) continue;
    if (event.entity == Entity::Own) {
      use.own = true;
    } else {
      use.third_party = true;
    }
  }
  return use;
}

std::vector<const BinaryReport*> AppReport::remote_loaded() const {
  std::vector<const BinaryReport*> out;
  for (const auto& b : binaries) {
    if (b.origin_url.has_value()) out.push_back(&b);
  }
  return out;
}

std::vector<const BinaryReport*> AppReport::malware_loaded() const {
  std::vector<const BinaryReport*> out;
  for (const auto& b : binaries) {
    if (b.malware.has_value()) out.push_back(&b);
  }
  return out;
}

DyDroid::DyDroid(PipelineOptions options) : options_(std::move(options)) {}

AppReport DyDroid::analyze(std::span<const std::uint8_t> apk_bytes,
                           std::uint64_t seed) {
  AppReport report;

  // ---- Static phase --------------------------------------------------------
  auto ir = analysis::decompile(apk_bytes);
  if (!ir.ok()) {
    report.decompile_failed = true;
    report.obfuscation.anti_decompilation = true;
    return report;
  }
  const auto& decompiled = ir.value();
  report.package = decompiled.manifest.package;
  report.min_sdk = decompiled.manifest.min_sdk;
  report.obfuscation = obfuscation::analyze_obfuscation(decompiled);
  if (decompiled.classes_dex.has_value()) {
    report.static_dcl = scan_dcl_apis(*decompiled.classes_dex);
  }

  if (!options_.dynamic_analysis || !report.static_dcl.any()) {
    return report;  // DCL-free apps are not exercised (paper §V-A)
  }

  // ---- Rewriting -----------------------------------------------------------
  // The measurement log lives on external storage; inject the permission if
  // missing. Anti-repackaging apps crash the (strict) repacker here.
  support::Bytes rewritten;
  std::span<const std::uint8_t> bytes_to_run = apk_bytes;
  if (!decompiled.manifest.has_permission(manifest::kWriteExternalStorage)) {
    auto result = analysis::rewrite_with_permission(
        apk_bytes, manifest::kWriteExternalStorage);
    if (!result.ok()) {
      report.status = DynamicStatus::kRewritingFailure;
      report.crash_message = result.error();
      return report;
    }
    rewritten = std::move(result).take();
    bytes_to_run = rewritten;
  }

  // ---- Dynamic phase -------------------------------------------------------
  os::Device device(options_.device);
  if (options_.scenario_setup) options_.scenario_setup(device);
  options_.runtime.apply(device.services());

  apk::ApkFile apk;
  try {
    apk = apk::ApkFile::deserialize(bytes_to_run, apk::ParseMode::kLenient);
  } catch (const support::ParseError& e) {
    report.status = DynamicStatus::kCrash;
    report.crash_message = e.what();
    return report;
  }
  auto man = apk.read_manifest();
  if (const auto installed = device.install(apk); !installed) {
    report.status = DynamicStatus::kCrash;
    report.crash_message = installed.error();
    return report;
  }

  support::Rng rng(seed);
  auto run = run_app(device, apk, man, rng, options_.engine);
  report.storage_recovered = run.storage_recovered;
  report.crash_message = run.monkey.crash_message;
  switch (run.monkey.outcome) {
    case monkey::Outcome::kNoActivity:
      report.status = DynamicStatus::kNoActivity;
      break;
    case monkey::Outcome::kCrash:
      report.status = DynamicStatus::kCrash;
      break;
    case monkey::Outcome::kExercised:
      report.status = DynamicStatus::kExercised;
      break;
  }
  report.events = std::move(run.events);
  report.vm_events = std::move(run.vm_events);

  // ---- Per-binary analyses -------------------------------------------------
  for (auto& binary : run.binaries) {
    BinaryReport br;
    br.origin_url = run.tracker.origin_url(binary.path);
    if (options_.detector != nullptr) {
      br.malware = options_.detector->scan(binary.bytes);
    }
    if (binary.kind == CodeKind::Dex) {
      try {
        if (dex::looks_like_dex(binary.bytes)) {
          br.privacy =
              privacy::analyze_privacy(dex::DexFile::deserialize(binary.bytes));
        } else if (apk::looks_like_apk(binary.bytes)) {
          const auto pkg = apk::ApkFile::deserialize(binary.bytes);
          if (auto inner = pkg.read_classes_dex()) {
            br.privacy = privacy::analyze_privacy(*inner);
          }
        }
      } catch (const support::ParseError& e) {
        support::log_warn("pipeline",
                          std::string("privacy: unparsable binary: ") +
                              e.what());
      }
    }
    br.binary = std::move(binary);
    report.binaries.push_back(std::move(br));
  }

  report.vulns =
      analyze_vulnerabilities(report.events, report.package, report.min_sdk);
  return report;
}

}  // namespace dydroid::core
