// Dynamic taint tracking — the TaintDroid/Uranine-style alternative privacy
// backend the paper's related work (§VI) contrasts with its static
// approach. Values carry taint labels propagated by the interpreter;
// privacy-source intrinsics attach labels, sink intrinsics report tainted
// arguments. Dynamic tracking sees only *executed* flows (and, unlike
// static analysis, follows them through reflection), while MiniFlowDroid
// covers all code including never-executed branches — the trade-off
// quantified by bench/ablation_taint_backends.
#pragma once

#include <string>
#include <vector>

#include "privacy/sources.hpp"
#include "vm/vm.hpp"

namespace dydroid::core {

struct DynamicLeak {
  privacy::TaintMask mask = 0;
  std::string sink_api;          // "cls.method"
  std::string call_site_class;   // first non-framework frame at the sink
};

class DynamicTaintTracker {
 public:
  /// Install taint source/sink hooks on `vm`. Composes with previously
  /// installed on_intrinsic_call/taint_source hooks (chains them).
  explicit DynamicTaintTracker(vm::Vm& vm);
  DynamicTaintTracker(const DynamicTaintTracker&) = delete;
  DynamicTaintTracker& operator=(const DynamicTaintTracker&) = delete;

  [[nodiscard]] const std::vector<DynamicLeak>& leaks() const {
    return leaks_;
  }
  [[nodiscard]] privacy::TaintMask leaked_mask() const;

 private:
  vm::Vm* vm_;
  std::vector<DynamicLeak> leaks_;
};

}  // namespace dydroid::core
