#include "core/download_tracker.hpp"

#include <deque>

namespace dydroid::core {

std::string DownloadTracker::key_of(const vm::FlowNode& node) {
  if (node.kind == vm::FlowNodeKind::File) return "F:" + node.label;
  return "O:" + std::to_string(node.object_id);
}

void DownloadTracker::add_url(const vm::FlowNode& node) {
  url_of_node_[key_of(node)] = node.label;
  reverse_.try_emplace(key_of(node));
}

void DownloadTracker::add_flow(const vm::FlowNode& from,
                               const vm::FlowNode& to) {
  if (from.kind == vm::FlowNodeKind::Url) add_url(from);
  reverse_[key_of(to)].insert(key_of(from));
  reverse_.try_emplace(key_of(from));
  ++edges_;
}

std::optional<std::string> DownloadTracker::origin_url(
    const std::string& file_path) const {
  const auto start = "F:" + file_path;
  if (reverse_.find(start) == reverse_.end()) return std::nullopt;
  std::set<std::string> seen{start};
  std::deque<std::string> frontier{start};
  while (!frontier.empty()) {
    const auto node = frontier.front();
    frontier.pop_front();
    const auto url = url_of_node_.find(node);
    if (url != url_of_node_.end()) return url->second;
    const auto preds = reverse_.find(node);
    if (preds == reverse_.end()) continue;
    for (const auto& p : preds->second) {
      if (seen.insert(p).second) frontier.push_back(p);
    }
  }
  return std::nullopt;
}

std::vector<std::string> DownloadTracker::remote_files() const {
  std::vector<std::string> out;
  for (const auto& [key, _] : reverse_) {
    if (!key.starts_with("F:")) continue;
    const auto path = key.substr(2);
    if (origin_url(path).has_value()) out.push_back(path);
  }
  return out;
}

}  // namespace dydroid::core
