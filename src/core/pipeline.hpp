// The DyDroid pipeline (Figure 1): decompile → static DCL filter →
// obfuscation analysis → (rewrite if needed) → dynamic analysis with
// interception → provenance/entity identification → malware detection →
// privacy tracking → vulnerability analysis. One call per app; the whole
// measurement (Section V) is this pipeline mapped over a corpus by
// driver::CorpusRunner.
//
// The per-app path is decomposed into composable stages (core/stages.hpp)
// that pass a single AnalysisContext. DyDroid itself is immutable after
// construction and `analyze` is const, so one instance can be shared by
// any number of corpus worker threads.
#pragma once

#include <functional>
#include <memory>
#include <optional>

#include "core/engine.hpp"
#include "core/static_filter.hpp"
#include "core/vulnerability.hpp"
#include "malware/droidnative.hpp"
#include "obfuscation/detector.hpp"
#include "privacy/flowdroid.hpp"
#include "support/blob.hpp"
#include "support/fault.hpp"

namespace dydroid::core {

class Stage;  // core/stages.hpp

/// Runtime-environment knobs (paper Table VIII configurations).
struct RuntimeConfig {
  std::optional<std::int64_t> time_ms;  // e.g. before the app release date
  bool airplane_mode = false;
  bool wifi_enabled = true;
  bool location_enabled = true;

  void apply(os::SystemServices& services) const;
};

struct PipelineOptions {
  EngineConfig engine;
  os::DeviceConfig device;
  RuntimeConfig runtime;
  /// Prepares the device before install: hosts remote payloads, installs
  /// companion apps, pre-places files (the app's real-world surroundings).
  /// Per-app scenarios are passed per AnalysisRequest instead, so one
  /// DyDroid can be shared across a whole corpus.
  std::function<void(os::Device&)> scenario_setup;
  /// Trained malware detector; null disables malware scanning.
  const malware::DroidNative* detector = nullptr;
  /// Skip the dynamic phase (static-only measurement).
  bool dynamic_analysis = true;

  // --- fault handling (docs/FAULTS.md) --------------------------------------
  /// Deterministic fault-injection plan; null/empty disables injection (the
  /// production fast path). The plan must outlive the pipeline. Each
  /// analyze() call derives its fault session from (request.seed,
  /// request.attempt), so injected failures are reproducible per app.
  const support::FaultPlan* faults = nullptr;
  /// Per-app wall-clock budget in ms; 0 disables. Enforced by
  /// driver::CorpusRunner: an over-budget app counts as timed_out (and is
  /// retried/quarantined under retry_on_crash), so one pathological app
  /// cannot stall a worker unnoticed.
  double max_app_wall_ms = 0.0;
  /// Retry a crashed or timed-out app once with a fresh fault session
  /// (attempt salts the session seed); if the retry fails too, the app is
  /// quarantined. Policy lives in driver::CorpusRunner.
  bool retry_on_crash = false;
};

enum class DynamicStatus {
  kNotRun,            // filtered out (no DCL code) or static-only mode
  kRewritingFailure,  // apktool-crash during permission injection (Table II)
  kNoActivity,        // Monkey cannot exercise (Table II)
  kCrash,             // app crashed at runtime (Table II)
  kExercised,         // fuzzed to completion (Table II)
};

std::string_view dynamic_status_name(DynamicStatus status);

/// Per-intercepted-binary analysis results.
struct BinaryReport {
  InterceptedBinary binary;
  std::optional<std::string> origin_url;  // remote provenance
  std::optional<malware::Detection> malware;
  privacy::PrivacyReport privacy;  // DEX binaries only
};

struct AppReport {
  std::string package;

  // Static phase.
  bool decompile_failed = false;  // anti-decompilation (tool crash)
  StaticFilterResult static_dcl;
  obfuscation::ObfuscationReport obfuscation;
  int min_sdk = 0;

  // Dynamic phase.
  DynamicStatus status = DynamicStatus::kNotRun;
  std::string crash_message;
  bool storage_recovered = false;
  std::vector<DclEvent> events;
  std::vector<BinaryReport> binaries;
  std::vector<vm::VmEvent> vm_events;
  std::vector<VulnFinding> vulns;

  // Convenience queries -----------------------------------------------------
  [[nodiscard]] bool intercepted(CodeKind kind) const;
  /// Entities observed launching DCL of a kind: {own, third_party}.
  struct EntityUse {
    bool own = false;
    bool third_party = false;
  };
  [[nodiscard]] EntityUse entity_use(CodeKind kind) const;
  /// Binaries whose content arrived from the network (policy violations).
  [[nodiscard]] std::vector<const BinaryReport*> remote_loaded() const;
  [[nodiscard]] std::vector<const BinaryReport*> malware_loaded() const;
};

/// One unit of corpus work: the bytes, the fuzzing seed and (optionally) a
/// per-app scenario that overrides PipelineOptions::scenario_setup. The
/// scenario is taken by pointer so enqueueing a corpus never copies
/// closures; the referee must outlive the analyze() call.
struct AnalysisRequest {
  /// The APK's serialized bytes as a refcounted view: enqueueing a corpus
  /// never copies package contents, and the whole analysis shares this one
  /// buffer (parsed once by StaticStage).
  support::Blob apk;
  std::uint64_t seed = 0;
  const std::function<void(os::Device&)>* scenario_setup = nullptr;
  /// Retry ordinal (0 = first attempt). Salts the fault session so
  /// probability-mode faults are transient across retries — deterministically.
  std::uint32_t attempt = 0;
};

class DyDroid {
 public:
  explicit DyDroid(PipelineOptions options = {});
  /// Custom stage list (testing/extension); stages run in the given order
  /// under the same no-exceptions guarantee as the canonical pipeline.
  DyDroid(PipelineOptions options,
          std::vector<std::unique_ptr<const Stage>> stages);
  ~DyDroid();
  DyDroid(DyDroid&&) noexcept;
  DyDroid& operator=(DyDroid&&) noexcept;

  /// Analyze one APK end to end. `seed` drives the fuzzing determinism.
  /// Const and thread-safe: all mutable state lives in the per-call
  /// AnalysisContext, so one DyDroid serves many worker threads.
  AppReport analyze(support::Blob apk, std::uint64_t seed) const;
  /// Borrowed-span convenience: copies once into a fresh Blob.
  AppReport analyze(std::span<const std::uint8_t> apk_bytes,
                    std::uint64_t seed) const;
  AppReport analyze(const AnalysisRequest& request) const;

  [[nodiscard]] const PipelineOptions& options() const { return options_; }
  /// Mutable access for pre-run configuration only — do not mutate options
  /// while worker threads are inside analyze().
  [[nodiscard]] PipelineOptions& options() { return options_; }

  /// Stage names in execution order. Part of the result cache's config
  /// fingerprint (docs/CACHE.md): a custom stage list must never share
  /// cache entries with the canonical pipeline.
  [[nodiscard]] std::vector<std::string_view> stage_names() const;

 private:
  PipelineOptions options_;
  std::vector<std::unique_ptr<const Stage>> stages_;
};

}  // namespace dydroid::core
