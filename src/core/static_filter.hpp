// Static filter (Figure 1, first stage): checks the decompiled IR for the
// *existence* of DCL-related code — class-loader construction for DEX,
// JNI load APIs for native — without verifying reachability. Apps with no
// DCL code are never exercised dynamically ("We try to avoid blindly
// exercising app[s], given the heavy cost of dynamic analysis").
#pragma once

#include "dex/dexfile.hpp"

namespace dydroid::core {

struct StaticFilterResult {
  bool dex_dcl = false;     // creates DexClassLoader/PathClassLoader
  bool native_dcl = false;  // invokes load()/loadLibrary()/load0()

  [[nodiscard]] bool any() const { return dex_dcl || native_dcl; }
};

StaticFilterResult scan_dcl_apis(const dex::DexFile& dex);

}  // namespace dydroid::core
