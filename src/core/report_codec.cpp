#include "core/report_codec.hpp"

#include <bit>
#include <cstdint>

#include "privacy/sources.hpp"
#include "support/error.hpp"

namespace dydroid::core {

namespace {

using support::ByteReader;
using support::ByteWriter;
using support::ParseError;

// ---- primitive helpers -----------------------------------------------------

void put_f64(ByteWriter& w, double v) {
  w.u64(std::bit_cast<std::uint64_t>(v));
}

double get_f64(ByteReader& r) { return std::bit_cast<double>(r.u64()); }

void put_bool(ByteWriter& w, bool v) { w.u8(v ? 1 : 0); }

bool get_bool(ByteReader& r) {
  const std::uint8_t v = r.u8();
  if (v > 1) throw ParseError("report codec: bool out of range");
  return v != 0;
}

/// Range-checked enum decode: `limit` is one past the last valid value.
template <typename E>
E get_enum(ByteReader& r, std::uint8_t limit, const char* what) {
  const std::uint8_t v = r.u8();
  if (v >= limit) {
    throw ParseError(std::string("report codec: bad ") + what + " value");
  }
  return static_cast<E>(v);
}

/// Decode a count field without trusting it for allocation: each element
/// consumes at least `min_element_bytes`, so any count that could not fit
/// in the remaining input is a lie (this is what keeps a bit-flipped count
/// from turning into a multi-GB reserve — see tests/fuzz_roundtrip_test).
std::size_t get_count(ByteReader& r, std::size_t min_element_bytes,
                      const char* what) {
  const std::uint32_t n = r.u32();
  if (min_element_bytes > 0 &&
      static_cast<std::size_t>(n) > r.remaining() / min_element_bytes) {
    throw ParseError(std::string("report codec: implausible ") + what +
                     " count");
  }
  return n;
}

// ---- stack traces ----------------------------------------------------------

void put_trace(ByteWriter& w, const vm::StackTrace& trace) {
  w.u32(static_cast<std::uint32_t>(trace.size()));
  for (const auto& frame : trace) {
    w.str(frame.class_name);
    w.str(frame.method_name);
  }
}

vm::StackTrace get_trace(ByteReader& r) {
  const std::size_t n = get_count(r, 8, "stack frame");
  vm::StackTrace trace;
  trace.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    vm::StackTraceElement frame;
    frame.class_name = r.str();
    frame.method_name = r.str();
    trace.push_back(std::move(frame));
  }
  return trace;
}

// ---- DCL events ------------------------------------------------------------

void put_event(ByteWriter& w, const DclEvent& event) {
  w.u8(static_cast<std::uint8_t>(event.kind));
  w.u32(static_cast<std::uint32_t>(event.paths.size()));
  for (const auto& path : event.paths) w.str(path);
  w.str(event.optimized_dir);
  w.str(event.call_site_class);
  w.u8(static_cast<std::uint8_t>(event.entity));
  put_bool(w, event.system_binary);
  put_bool(w, event.integrity_check_before);
  put_trace(w, event.trace);
}

DclEvent get_event(ByteReader& r) {
  DclEvent event;
  event.kind = get_enum<CodeKind>(r, 2, "code kind");
  const std::size_t paths = get_count(r, 4, "path");
  event.paths.reserve(paths);
  for (std::size_t i = 0; i < paths; ++i) event.paths.push_back(r.str());
  event.optimized_dir = r.str();
  event.call_site_class = r.str();
  event.entity = get_enum<Entity>(r, 2, "entity");
  event.system_binary = get_bool(r);
  event.integrity_check_before = get_bool(r);
  event.trace = get_trace(r);
  return event;
}

// ---- intercepted binaries --------------------------------------------------

void put_binary(ByteWriter& w, const BinaryReport& binary) {
  w.u8(static_cast<std::uint8_t>(binary.binary.kind));
  w.str(binary.binary.path);
  w.blob(binary.binary.bytes);
  w.str(binary.binary.call_site_class);
  w.u8(static_cast<std::uint8_t>(binary.binary.entity));

  put_bool(w, binary.origin_url.has_value());
  if (binary.origin_url.has_value()) w.str(*binary.origin_url);

  put_bool(w, binary.malware.has_value());
  if (binary.malware.has_value()) {
    w.str(binary.malware->family);
    put_f64(w, binary.malware->score);
    w.str(binary.malware->matched_sample);
  }

  w.u32(static_cast<std::uint32_t>(binary.privacy.leaks.size()));
  for (const auto& leak : binary.privacy.leaks) {
    w.u8(static_cast<std::uint8_t>(leak.type));
    w.str(leak.sink_api);
    w.str(leak.sink_class);
    w.str(leak.sink_method);
  }
}

BinaryReport get_binary(ByteReader& r) {
  BinaryReport binary;
  binary.binary.kind = get_enum<CodeKind>(r, 2, "code kind");
  binary.binary.path = r.str();
  binary.binary.bytes = support::Blob::take(r.blob());
  binary.binary.call_site_class = r.str();
  binary.binary.entity = get_enum<Entity>(r, 2, "entity");

  if (get_bool(r)) binary.origin_url = r.str();
  if (get_bool(r)) {
    malware::Detection detection;
    detection.family = r.str();
    detection.score = get_f64(r);
    detection.matched_sample = r.str();
    binary.malware = std::move(detection);
  }

  const std::size_t leaks = get_count(r, 13, "privacy leak");
  binary.privacy.leaks.reserve(leaks);
  for (std::size_t i = 0; i < leaks; ++i) {
    privacy::Leak leak;
    leak.type = get_enum<privacy::DataType>(
        r, static_cast<std::uint8_t>(privacy::kNumDataTypes), "data type");
    leak.sink_api = r.str();
    leak.sink_class = r.str();
    leak.sink_method = r.str();
    binary.privacy.leaks.push_back(std::move(leak));
  }
  return binary;
}

}  // namespace

void serialize_report(ByteWriter& w, const AppReport& report) {
  w.str(report.package);
  put_bool(w, report.decompile_failed);
  put_bool(w, report.static_dcl.dex_dcl);
  put_bool(w, report.static_dcl.native_dcl);
  put_bool(w, report.obfuscation.lexical);
  put_bool(w, report.obfuscation.reflection);
  put_bool(w, report.obfuscation.native_code);
  put_bool(w, report.obfuscation.dex_encryption);
  put_bool(w, report.obfuscation.anti_decompilation);
  w.i64(report.min_sdk);
  w.u8(static_cast<std::uint8_t>(report.status));
  w.str(report.crash_message);
  put_bool(w, report.storage_recovered);

  w.u32(static_cast<std::uint32_t>(report.events.size()));
  for (const auto& event : report.events) put_event(w, event);

  w.u32(static_cast<std::uint32_t>(report.binaries.size()));
  for (const auto& binary : report.binaries) put_binary(w, binary);

  w.u32(static_cast<std::uint32_t>(report.vm_events.size()));
  for (const auto& event : report.vm_events) {
    w.str(event.kind);
    w.str(event.detail);
  }

  w.u32(static_cast<std::uint32_t>(report.vulns.size()));
  for (const auto& vuln : report.vulns) {
    w.u8(static_cast<std::uint8_t>(vuln.kind));
    w.u8(static_cast<std::uint8_t>(vuln.category));
    w.str(vuln.path);
  }
}

AppReport deserialize_report(ByteReader& r) {
  AppReport report;
  report.package = r.str();
  report.decompile_failed = get_bool(r);
  report.static_dcl.dex_dcl = get_bool(r);
  report.static_dcl.native_dcl = get_bool(r);
  report.obfuscation.lexical = get_bool(r);
  report.obfuscation.reflection = get_bool(r);
  report.obfuscation.native_code = get_bool(r);
  report.obfuscation.dex_encryption = get_bool(r);
  report.obfuscation.anti_decompilation = get_bool(r);
  const std::int64_t min_sdk = r.i64();
  if (min_sdk < 0 || min_sdk > 0x7fffffff) {
    throw ParseError("report codec: min_sdk out of range");
  }
  report.min_sdk = static_cast<int>(min_sdk);
  report.status = get_enum<DynamicStatus>(r, 5, "dynamic status");
  report.crash_message = r.str();
  report.storage_recovered = get_bool(r);

  const std::size_t events = get_count(r, 16, "event");
  report.events.reserve(events);
  for (std::size_t i = 0; i < events; ++i) {
    report.events.push_back(get_event(r));
  }

  const std::size_t binaries = get_count(r, 19, "binary");
  report.binaries.reserve(binaries);
  for (std::size_t i = 0; i < binaries; ++i) {
    report.binaries.push_back(get_binary(r));
  }

  const std::size_t vm_events = get_count(r, 8, "vm event");
  report.vm_events.reserve(vm_events);
  for (std::size_t i = 0; i < vm_events; ++i) {
    vm::VmEvent event;
    event.kind = r.str();
    event.detail = r.str();
    report.vm_events.push_back(std::move(event));
  }

  const std::size_t vulns = get_count(r, 6, "vulnerability");
  report.vulns.reserve(vulns);
  for (std::size_t i = 0; i < vulns; ++i) {
    VulnFinding vuln;
    vuln.kind = get_enum<CodeKind>(r, 2, "code kind");
    vuln.category = get_enum<VulnCategory>(r, 2, "vuln category");
    vuln.path = r.str();
    report.vulns.push_back(std::move(vuln));
  }
  return report;
}

}  // namespace dydroid::core
