// DCL event log records and call-site / responsible-entity classification
// (paper §III-B, Figure 2).
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "support/blob.hpp"
#include "support/bytes.hpp"
#include "vm/stack_trace.hpp"

namespace dydroid::core {

enum class CodeKind { Dex, Native };

std::string_view code_kind_name(CodeKind kind);

/// Who launched the DCL: the app developer's own code or a bundled
/// third-party SDK/library (paper Table IV).
enum class Entity { Own, ThirdParty };

std::string_view entity_name(Entity entity);

/// One logged DCL event.
struct DclEvent {
  CodeKind kind = CodeKind::Dex;
  std::vector<std::string> paths;  // files named by the load
  std::string optimized_dir;       // odex output dir (DexClassLoader only)
  std::string call_site_class;     // first non-framework frame (Fig. 2)
  Entity entity = Entity::ThirdParty;
  bool system_binary = false;      // /system/lib — logged, out of scope
  /// True when the app hashed a file (integrity verification) before this
  /// load — such apps are excluded from the code-injection findings.
  bool integrity_check_before = false;
  vm::StackTrace trace;
};

/// A dynamically loaded binary captured by the interceptor. `bytes` is a
/// refcounted snapshot view: VFS files are immutable Blobs replaced whole
/// on write, so holding the view IS the snapshot — no copy needed.
struct InterceptedBinary {
  CodeKind kind = CodeKind::Dex;
  std::string path;
  support::Blob bytes;
  std::string call_site_class;
  Entity entity = Entity::ThirdParty;
};

/// Walk a stack trace from the innermost frame past framework classes to
/// the call-site class (paper: "the top element of the stack trace is the
/// call site class"). Returns empty when only framework frames exist.
std::string call_site_of(const vm::StackTrace& trace);

/// Own vs. third-party: the call-site class's package is (a subpackage of)
/// the application package.
Entity classify_entity(std::string_view call_site_class,
                       std::string_view app_package);

}  // namespace dydroid::core
