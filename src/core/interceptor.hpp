// CodeInterceptor: registers on a Vm's instrumentation and implements the
// paper's DCL logger + code interceptor + download tracker:
//   - logs every class-loader construction / native load with call-site
//     attribution (skipping trusted /system/lib binaries),
//   - snapshots the loaded files' bytes,
//   - holds loaded paths in a queue and makes delete/rename on them silently
//     fail (mutual exclusion against temporary ad-SDK payloads),
//   - feeds the Table-I flow graph for provenance queries.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "core/dcl_log.hpp"
#include "core/download_tracker.hpp"
#include "vm/vm.hpp"

namespace dydroid::core {

class CodeInterceptor {
 public:
  /// Installs hooks on `vm`. The interceptor must outlive the Vm's use.
  explicit CodeInterceptor(vm::Vm& vm);
  CodeInterceptor(const CodeInterceptor&) = delete;
  CodeInterceptor& operator=(const CodeInterceptor&) = delete;

  [[nodiscard]] const std::vector<DclEvent>& events() const { return events_; }
  [[nodiscard]] const std::vector<InterceptedBinary>& binaries() const {
    return binaries_;
  }
  [[nodiscard]] const DownloadTracker& tracker() const { return tracker_; }

  /// Paths currently protected from delete/rename.
  [[nodiscard]] const std::set<std::string>& protected_paths() const {
    return queue_;
  }

  /// Count of blocked delete/rename attempts (ablation metric).
  [[nodiscard]] std::size_t blocked_mutations() const { return blocked_; }

 private:
  void on_load(CodeKind kind, const std::vector<std::string>& paths,
               const std::string& optimized_dir, const vm::StackTrace& trace);

  vm::Vm* vm_;
  std::string app_package_;
  std::vector<DclEvent> events_;
  std::vector<InterceptedBinary> binaries_;
  std::set<std::string> queue_;           // protected paths
  std::set<std::string> snapshotted_;     // avoid duplicate binaries
  DownloadTracker tracker_;
  bool digest_seen_ = false;  // integrity-verification API observed
  std::size_t blocked_ = 0;
};

}  // namespace dydroid::core
