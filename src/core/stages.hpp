// The DyDroid pipeline decomposed into named, individually-testable stages
// (Figure 1): StaticStage (decompile + DCL filter + obfuscation analysis),
// RewriteStage (permission injection), DynamicStage (device boot + fuzzing
// with interception), PerBinaryStage (provenance, malware, privacy per
// intercepted binary) and VulnStage (code-injection vulnerability analysis).
//
// Stages communicate exclusively through one AnalysisContext value and
// report failures through a support::Result status instead of exceptions,
// so a corpus worker thread can never be torn down by a stray ParseError
// escaping the per-app path.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "analysis/decompiler.hpp"
#include "apk/apk.hpp"
#include "core/engine.hpp"
#include "core/pipeline.hpp"
#include "support/blob.hpp"
#include "support/error.hpp"

namespace dydroid::core {

/// Everything one in-flight app analysis owns. The stages only read the
/// shared PipelineOptions; all mutable state lives here, which is what makes
/// `DyDroid::analyze` const-callable and safe to run from many threads.
struct AnalysisContext {
  // Inputs (fixed for the lifetime of the analysis).
  support::Blob apk;  // the subject APK's serialized bytes (refcounted view)
  std::uint64_t seed = 0;
  const PipelineOptions* options = nullptr;
  /// Optional per-app scenario override (corpus jobs); when null the shared
  /// options->scenario_setup applies.
  const std::function<void(os::Device&)>* scenario_override = nullptr;

  // Cross-stage intermediates. The container is parsed ONCE per attempt
  // (`image`, by StaticStage); every later stage shares that parse. A
  // rewrite produces `run_image` (the only repack that serializes); when it
  // is invalid, DynamicStage installs `image` directly.
  std::optional<analysis::Ir> ir;  // StaticStage → Rewrite/Dynamic
  apk::ApkImage image;             // the one shared parse of `apk`
  apk::ApkImage run_image;         // rewritten image (invalid = run `image`)
  std::optional<RunResult> run;    // DynamicStage → PerBinaryStage

  // Output.
  AppReport report;

  /// The scenario to apply before install: the per-app override when
  /// present, otherwise the pipeline-wide one. May be an empty function.
  [[nodiscard]] const std::function<void(os::Device&)>& scenario() const {
    if (scenario_override != nullptr && *scenario_override) {
      return *scenario_override;
    }
    return options->scenario_setup;
  }
};

/// What a stage tells the pipeline driver to do next. A stage that resolves
/// the app's fate early (decompile failure, DCL-free app, rewriting
/// failure, install crash) fills in the report and returns kStop — that is
/// a *successful* short-circuit, not an error.
enum class StageAction { kContinue, kStop };

/// Stage status: kContinue/kStop on success, an error message for
/// unexpected internal failures. The pipeline converts errors into a
/// kCrash report instead of letting them unwind a worker thread.
using StageResult = support::Result<StageAction>;

/// One pipeline stage. Stages are stateless and const: every invocation
/// reads the shared options and writes only through the context.
class Stage {
 public:
  virtual ~Stage() = default;
  [[nodiscard]] virtual std::string_view name() const = 0;
  [[nodiscard]] virtual StageResult run(AnalysisContext& ctx) const = 0;
};

/// Decompile → static DCL filter → obfuscation analysis (paper §IV-A).
/// Stops the pipeline for anti-decompilation apps and DCL-free apps.
class StaticStage final : public Stage {
 public:
  [[nodiscard]] std::string_view name() const override { return "static"; }
  [[nodiscard]] StageResult run(AnalysisContext& ctx) const override;
};

/// Inject WRITE_EXTERNAL_STORAGE if missing so the measurement log can be
/// recovered (paper §IV-B). Anti-repackaging traps crash the repacker here.
class RewriteStage final : public Stage {
 public:
  [[nodiscard]] std::string_view name() const override { return "rewrite"; }
  [[nodiscard]] StageResult run(AnalysisContext& ctx) const override;
};

/// Boot a fresh device, apply the scenario + runtime config, install and
/// fuzz the app with interception attached (paper §IV-C).
class DynamicStage final : public Stage {
 public:
  [[nodiscard]] std::string_view name() const override { return "dynamic"; }
  [[nodiscard]] StageResult run(AnalysisContext& ctx) const override;
};

/// Per intercepted binary: remote provenance, malware scan, privacy
/// analysis of loaded DEX code (paper §V-D/E/F).
class PerBinaryStage final : public Stage {
 public:
  [[nodiscard]] std::string_view name() const override { return "per-binary"; }
  [[nodiscard]] StageResult run(AnalysisContext& ctx) const override;
};

/// Code-injection vulnerability analysis over the observed events (§V-G).
class VulnStage final : public Stage {
 public:
  [[nodiscard]] std::string_view name() const override { return "vuln"; }
  [[nodiscard]] StageResult run(AnalysisContext& ctx) const override;
};

/// The canonical stage order (Figure 1).
std::vector<std::unique_ptr<const Stage>> default_stages();

}  // namespace dydroid::core
