// Canonical binary (de)serialization of core::AppReport — the payload the
// write-ahead outcome journal persists per app (docs/CHECKPOINT.md).
//
// Guarantees:
//   * Exact round-trip: deserialize(serialize(r)) reproduces every field,
//     including intercepted binary *bytes* (the JSON report only summarizes
//     them), so the JSON rendered from a replayed report is byte-identical
//     to the live run's.
//   * Defensive decode: a ByteReader over hostile bytes either yields a
//     valid report or throws support::ParseError — enum values are
//     range-checked, lengths are bounds-checked, trailing garbage is
//     rejected by the callers that own the full payload. Never UB.
//
// The format is versioned (leading version byte written by the outcome
// codec that wraps this one); integers are little-endian via
// support::ByteWriter/ByteReader.
#pragma once

#include "core/pipeline.hpp"
#include "support/bytes.hpp"

namespace dydroid::core {

/// Append the canonical encoding of `report` to `writer`.
void serialize_report(support::ByteWriter& writer, const AppReport& report);

/// Decode one report. Throws support::ParseError on truncation or any
/// out-of-range enum/field.
AppReport deserialize_report(support::ByteReader& reader);

}  // namespace dydroid::core
