#include "core/static_filter.hpp"

namespace dydroid::core {

StaticFilterResult scan_dcl_apis(const dex::DexFile& dex) {
  StaticFilterResult result;
  for (const auto& cls : dex.classes()) {
    for (const auto& m : cls.methods) {
      if (m.is_native()) result.native_dcl = true;
      for (const auto& ins : m.code) {
        const bool names_class =
            ins.op == dex::Op::NewInstance || ins.is_invoke();
        if (!names_class) continue;
        const auto& target = dex.string_at(ins.cls);
        if (target == "dalvik.system.DexClassLoader" ||
            target == "dalvik.system.PathClassLoader") {
          result.dex_dcl = true;
        }
        if (ins.is_invoke() &&
            (target == "java.lang.System" || target == "java.lang.Runtime")) {
          const auto& name = dex.string_at(ins.name);
          if (name == "load" || name == "loadLibrary" || name == "load0") {
            result.native_dcl = true;
          }
        }
      }
    }
  }
  return result;
}

}  // namespace dydroid::core
