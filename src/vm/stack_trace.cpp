#include "vm/stack_trace.hpp"

#include "support/strings.hpp"

namespace dydroid::vm {

bool is_framework_class(std::string_view class_name) {
  using support::package_has_prefix;
  const auto pkg = std::string(class_name);
  return package_has_prefix(pkg, "java") || package_has_prefix(pkg, "javax") ||
         package_has_prefix(pkg, "dalvik") ||
         package_has_prefix(pkg, "android") || class_name == "libc" ||
         package_has_prefix(pkg, "com.android.internal");
}

std::string format_stack_trace(const StackTrace& trace) {
  std::string out;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    if (i != 0) out += " <- ";
    out += trace[i].class_name + "." + trace[i].method_name;
  }
  return out;
}

}  // namespace dydroid::vm
