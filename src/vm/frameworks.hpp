// Framework API surface served as intrinsics: class loaders, JNI loading,
// java.io files & streams, java.net URLs, telephony/location/accounts/
// package-manager privacy sources, logging/SMS sinks, system services, and
// the libc pseudo-syscalls reachable from native code.
#pragma once

namespace dydroid::vm {

class Vm;

/// Register every framework class and intrinsic on a fresh Vm.
void install_framework(Vm& vm);

}  // namespace dydroid::vm
