// MiniDalvik value & object model.
//
// Values are null, 64-bit integers, strings, or references to heap objects.
// Every object carries a VM-unique id — the "hash code" the paper's download
// tracker uses to identify objects in flow edges (Table I: "Each object is
// represented by type and hash code").
#pragma once

#include <any>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <variant>

namespace dydroid::vm {

class RuntimeClass;
class VmObject;
using ObjRef = std::shared_ptr<VmObject>;

class Value {
 public:
  Value() = default;  // null
  // NOLINTBEGIN(google-explicit-constructor): values convert implicitly,
  // mirroring how registers hold any type.
  Value(std::int64_t i) : v_(i) {}
  Value(int i) : v_(static_cast<std::int64_t>(i)) {}
  Value(std::string s) : v_(std::move(s)) {}
  Value(const char* s) : v_(std::string(s)) {}
  Value(ObjRef o) : v_(std::move(o)) {}
  // NOLINTEND(google-explicit-constructor)

  [[nodiscard]] bool is_null() const {
    return std::holds_alternative<std::monostate>(v_);
  }
  [[nodiscard]] bool is_int() const {
    return std::holds_alternative<std::int64_t>(v_);
  }
  [[nodiscard]] bool is_str() const {
    return std::holds_alternative<std::string>(v_);
  }
  [[nodiscard]] bool is_obj() const {
    return std::holds_alternative<ObjRef>(v_);
  }

  /// Integer view; null reads as 0 (throws on string/object).
  [[nodiscard]] std::int64_t as_int() const;
  /// String view; throws unless the value is a string.
  [[nodiscard]] const std::string& as_str() const;
  /// Object view; throws unless the value is an object reference.
  [[nodiscard]] const ObjRef& as_obj() const;

  /// Human-readable rendering (Concat, log output, exception messages).
  [[nodiscard]] std::string display() const;

  /// Structural equality: ints/strings by value, objects by identity,
  /// null == null.
  [[nodiscard]] bool equals(const Value& other) const;

  /// Truthiness for If* branches: non-zero int, non-empty handled as int 0/1
  /// is the only branching type; null is false, objects are true.
  [[nodiscard]] bool truthy() const;

  /// Dynamic taint label (TaintDroid-style): a bitmask of privacy data
  /// types attached to the value and propagated by the interpreter. Zero
  /// for untainted values.
  [[nodiscard]] std::uint32_t taint() const { return taint_; }
  void set_taint(std::uint32_t mask) { taint_ = mask; }
  void add_taint(std::uint32_t mask) { taint_ |= mask; }

 private:
  std::variant<std::monostate, std::int64_t, std::string, ObjRef> v_;
  std::uint32_t taint_ = 0;
};

/// A heap object: dynamic class name, named fields, and (for framework
/// objects) opaque native state such as an open stream or a loader.
class VmObject {
 public:
  VmObject(std::uint64_t id, std::string class_name)
      : id_(id), class_name_(std::move(class_name)) {}

  [[nodiscard]] std::uint64_t id() const { return id_; }
  [[nodiscard]] const std::string& class_name() const { return class_name_; }

  [[nodiscard]] Value get_field(const std::string& name) const {
    const auto it = fields_.find(name);
    return it == fields_.end() ? Value() : it->second;
  }
  void set_field(const std::string& name, Value v) {
    fields_[name] = std::move(v);
  }

  /// Opaque framework-native state (stream cursors, loader state, ...).
  std::any& native_state() { return native_state_; }
  [[nodiscard]] const std::any& native_state() const { return native_state_; }

  /// Runtime class for app-defined objects; null for framework objects.
  /// Non-owning: loaders own RuntimeClass instances and outlive the heap.
  [[nodiscard]] RuntimeClass* rt_class() const { return rt_class_; }
  void set_rt_class(RuntimeClass* rt) { rt_class_ = rt; }

 private:
  std::uint64_t id_;
  std::string class_name_;
  std::unordered_map<std::string, Value> fields_;
  std::any native_state_;
  RuntimeClass* rt_class_ = nullptr;
};

}  // namespace dydroid::vm
