// Framework instrumentation — the "modified Android framework" of §III-B.
//
// The VM calls these observers at exactly the paper's mediation points:
//   * DexClassLoader / PathClassLoader constructors   (bytecode DCL)
//   * Runtime/System load(), loadLibrary(), load0()   (native DCL)
//   * java.io.File delete() / renameTo()              (interception mutex)
//   * java.net.URL construction, stream read/write    (download tracker)
// DyDroid's DCL logger, code interceptor and download tracker are built by
// registering callbacks here; the VM itself stays policy-free.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "vm/stack_trace.hpp"
#include "vm/value.hpp"

namespace dydroid::vm {

/// Node kinds in the download-tracker flow graph (paper Table I).
enum class FlowNodeKind : std::uint8_t {
  Url,
  InputStream,
  Buffer,
  OutputStream,
  File,
};

std::string_view flow_node_kind_name(FlowNodeKind kind);

/// A flow-graph node: an object identified by type + hash code, or a file
/// identified by its path.
struct FlowNode {
  FlowNodeKind kind = FlowNodeKind::Buffer;
  std::uint64_t object_id = 0;  // VM object id; 0 for file nodes
  std::string label;            // URL spec for Url nodes, path for File nodes
};

/// Kind of class loader whose constructor fired.
enum class LoaderKind : std::uint8_t { DexClassLoader, PathClassLoader };

struct Instrumentation {
  /// A DexClassLoader/PathClassLoader was constructed. `dex_path` is the
  /// ':'-separated file list; `optimized_dir` is where odex output goes
  /// (empty for PathClassLoader).
  std::function<void(LoaderKind kind, const std::string& dex_path,
                     const std::string& optimized_dir,
                     const StackTrace& trace)>
      on_dex_load;

  /// Native code was loaded via load()/loadLibrary(); `path` is the resolved
  /// library file path.
  std::function<void(const std::string& path, const StackTrace& trace)>
      on_native_load;

  /// File.delete()/renameTo() is about to run. Return false to make the
  /// operation silently fail (the paper's mutual-exclusion trick that keeps
  /// temporary ad-SDK payloads on disk for interception).
  std::function<bool(const std::string& path)> allow_file_delete;
  std::function<bool(const std::string& from, const std::string& to)>
      allow_file_rename;

  /// new URL(spec) — `node` is the Url flow node.
  std::function<void(const FlowNode& node)> on_url_created;

  /// A Table-I flow edge was observed (URL->InputStream, InputStream->Buffer,
  /// Buffer->OutputStream, OutputStream->File, File->File, File->InputStream,
  /// stream wrapping, ...).
  std::function<void(const FlowNode& from, const FlowNode& to)> on_flow;

  /// A file's bytes hit the filesystem through an app-visible API.
  std::function<void(const std::string& path)> on_file_written;

  /// Every framework API invocation (class, method) — used by tests and by
  /// behavior verification (notifications, sms, ptrace, ...).
  std::function<void(const std::string& cls, const std::string& method)>
      on_api_call;

  // --- dynamic taint (TaintDroid/Uranine-style, an alternative privacy
  // --- backend the paper's related work contrasts with static analysis) ---

  /// Called before a framework intrinsic runs, with the concrete argument
  /// values (dynamic analysis sees real URIs and payloads). Used to record
  /// tainted data reaching sinks.
  std::function<void(const std::string& cls, const std::string& method,
                     const std::vector<Value>& args)>
      on_intrinsic_call;

  /// Taint bits to attach to an intrinsic's result (privacy sources).
  /// Returning 0 leaves only the default conservative pass-through of the
  /// arguments' taint.
  std::function<std::uint32_t(const std::string& cls,
                              const std::string& method,
                              const std::vector<Value>& args)>
      taint_source;
};

}  // namespace dydroid::vm
