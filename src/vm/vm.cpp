#include "vm/vm.hpp"

#include <cassert>

#include "support/log.hpp"
#include "support/strings.hpp"
#include "vm/frameworks.hpp"

namespace dydroid::vm {

using support::Status;

namespace {

std::string basename_no_ext(std::string_view path) {
  const auto slash = path.rfind('/');
  auto base = slash == std::string_view::npos ? path : path.substr(slash + 1);
  const auto dot = base.rfind('.');
  if (dot != std::string_view::npos) base = base.substr(0, dot);
  return std::string(base);
}

}  // namespace

Vm::Vm(os::Device& device, AppContext app, VmLimits limits)
    : device_(&device), app_(std::move(app)), limits_(limits) {
  boot_loader_ = new_loader(LoaderType::Boot, nullptr);
  install_framework(*this);
}

Vm::~Vm() = default;

LoaderState* Vm::new_loader(LoaderType type, LoaderState* parent) {
  loaders_.push_back(std::make_unique<LoaderState>(type, parent));
  return loaders_.back().get();
}

Status Vm::load_app(const apk::ApkFile& apk) {
  std::optional<dex::DexFile> classes;
  try {
    classes = apk.read_classes_dex();
  } catch (const support::ParseError& e) {
    return Status::failure(std::string("load_app: ") + e.what());
  }
  if (!classes.has_value()) {
    return Status::failure("load_app: no classes.dex");
  }
  app_loader_ = new_loader(LoaderType::AppPath, boot_loader_);
  app_loader_->add_dex(
      std::make_shared<const dex::DexFile>(*std::move(classes)));
  return Status();
}

ObjRef Vm::make_object(std::string_view class_name, RuntimeClass* rt) {
  auto obj = std::make_shared<VmObject>(next_object_id_++,
                                        std::string(class_name));
  obj->set_rt_class(rt);
  return obj;
}

StackTrace Vm::current_stack_trace() const {
  StackTrace trace;
  trace.reserve(frames_.size());
  for (auto it = frames_.rbegin(); it != frames_.rend(); ++it) {
    trace.push_back(StackTraceElement{it->class_name, it->method_name});
  }
  return trace;
}

LoaderState* Vm::current_loader() const {
  for (auto it = frames_.rbegin(); it != frames_.rend(); ++it) {
    if (it->cls != nullptr) return it->cls->loader();
  }
  return app_loader_ != nullptr ? app_loader_ : boot_loader_;
}

void Vm::register_intrinsic(std::string_view cls, std::string_view method,
                            Intrinsic fn) {
  intrinsics_[std::string(cls) + "." + std::string(method)] = std::move(fn);
  register_framework_class(cls);
}

void Vm::register_framework_class(std::string_view name,
                                  std::string_view super) {
  auto& entry = framework_super_[std::string(name)];
  if (!super.empty()) entry = std::string(super);
}

const Intrinsic* Vm::find_intrinsic(const std::string& cls,
                                    const std::string& method) const {
  // Walk the framework class hierarchy: e.g. HttpURLConnection ->
  // URLConnection for getInputStream.
  std::string current = cls;
  for (int hop = 0; hop < 16; ++hop) {
    const auto it = intrinsics_.find(current + "." + method);
    if (it != intrinsics_.end()) return &it->second;
    const auto sup = framework_super_.find(current);
    if (sup == framework_super_.end() || sup->second.empty()) break;
    current = sup->second;
  }
  return nullptr;
}

Value Vm::call_intrinsic(const std::string& cls, const std::string& method,
                         std::vector<Value> args) {
  const auto* fn = find_intrinsic(cls, method);
  if (fn == nullptr) {
    throw make_exception("NoSuchMethodError: " + cls + "." + method);
  }
  frames_.push_back(Frame{nullptr, cls, method});
  if (hooks_.on_api_call) hooks_.on_api_call(cls, method);
  if (hooks_.on_intrinsic_call) hooks_.on_intrinsic_call(cls, method, args);
  struct Pop {
    std::vector<Frame>* f;
    ~Pop() { f->pop_back(); }
  } pop{&frames_};
  // Dynamic taint: intrinsics conservatively pass argument taint through to
  // their result; registered sources add their own label.
  std::uint32_t taint = 0;
  for (const auto& a : args) taint |= a.taint();
  if (hooks_.taint_source) taint |= hooks_.taint_source(cls, method, args);
  auto result = (*fn)(*this, args);
  result.add_taint(taint);
  return result;
}

RuntimeClass* Vm::load_class(LoaderState* loader, std::string_view name) {
  if (loader == nullptr) loader = current_loader();
  if (auto* cached = loader->cached(std::string(name))) return cached;
  // Parent-first delegation.
  if (loader->parent() != nullptr) {
    // Recurse through parents without throwing.
    RuntimeClass* from_parent = nullptr;
    try {
      from_parent = load_class(loader->parent(), name);
    } catch (const VmException&) {
      from_parent = nullptr;
    }
    if (from_parent != nullptr) return from_parent;
  }
  if (loader->type() == LoaderType::Boot) {
    if (framework_super_.find(std::string(name)) != framework_super_.end() ||
        is_framework_class(name)) {
      auto rt = std::make_unique<RuntimeClass>(std::string(name), nullptr,
                                               nullptr, loader);
      return loader->define(std::move(rt));
    }
    throw make_exception("ClassNotFoundException: " + std::string(name));
  }
  const auto found = loader->find_local(name);
  if (found.def == nullptr) {
    throw make_exception("ClassNotFoundException: " + std::string(name));
  }
  auto rt = std::make_unique<RuntimeClass>(std::string(name), found.dex,
                                           found.def, loader);
  return loader->define(std::move(rt));
}

RuntimeClass* Vm::resolve_app_method(RuntimeClass* start,
                                     std::string_view method_name,
                                     const dex::Method** out) {
  RuntimeClass* rc = start;
  int hops = 0;
  while (rc != nullptr && !rc->is_framework() && hops++ < 32) {
    if (const auto* m = rc->def()->find_method(method_name)) {
      *out = m;
      return rc;
    }
    const auto& super = rc->super_name();
    if (super.empty()) break;
    try {
      rc = load_class(rc->loader(), super);
    } catch (const VmException&) {
      break;
    }
  }
  *out = nullptr;
  return nullptr;
}

ObjRef Vm::instantiate(std::string_view class_name) {
  RuntimeClass* rc = nullptr;
  try {
    rc = load_class(app_loader_, class_name);
  } catch (const VmException&) {
    // Packed apps (DEX encryption) declare components that only exist in a
    // runtime-created loader: packers swizzle the component class loader, so
    // component resolution falls through to loaders the app created.
    for (const auto& loader : loaders_) {
      if (loader->type() != LoaderType::RuntimeDex &&
          loader->type() != LoaderType::RuntimePath) {
        continue;
      }
      if (loader->find_local(class_name).def != nullptr) {
        rc = load_class(loader.get(), class_name);
        break;
      }
    }
    if (rc == nullptr) throw;
  }
  auto obj = make_object(class_name, rc);
  const dex::Method* init = nullptr;
  if (auto* owner = resolve_app_method(rc, "<init>", &init);
      owner != nullptr && init->num_params == 1) {
    invoke(owner, *init, {Value(obj)});
  }
  return obj;
}

bool Vm::has_method(const ObjRef& receiver, std::string_view method_name) {
  if (receiver == nullptr || receiver->rt_class() == nullptr) return false;
  const dex::Method* m = nullptr;
  return resolve_app_method(receiver->rt_class(), method_name, &m) != nullptr;
}

Value Vm::call_method(const ObjRef& receiver, std::string_view method_name,
                      std::vector<Value> extra_args) {
  if (receiver == nullptr || receiver->rt_class() == nullptr) {
    throw make_exception("NullPointerException: call on null/framework obj");
  }
  const dex::Method* m = nullptr;
  auto* owner = resolve_app_method(receiver->rt_class(), method_name, &m);
  if (owner == nullptr) {
    throw make_exception("NoSuchMethodError: " +
                         receiver->class_name() + "." +
                         std::string(method_name));
  }
  std::vector<Value> args;
  args.reserve(1 + extra_args.size());
  args.emplace_back(receiver);
  for (auto& a : extra_args) args.push_back(std::move(a));
  return invoke(owner, *m, std::move(args));
}

Value Vm::call_static(std::string_view class_name,
                      std::string_view method_name, std::vector<Value> args) {
  auto* rc = load_class(app_loader_, class_name);
  const dex::Method* m =
      rc->is_framework() ? nullptr : rc->def()->find_method(method_name);
  if (m == nullptr) {
    throw make_exception("NoSuchMethodError: " + std::string(class_name) +
                         "." + std::string(method_name));
  }
  return invoke(rc, *m, std::move(args));
}

Value Vm::invoke(RuntimeClass* cls, const dex::Method& method,
                 std::vector<Value> args) {
  if (frames_.empty()) steps_ = 0;  // fresh entry: reset the ANR budget
  if (method.is_native()) {
    const auto symbol = find_native_symbol(method.name);
    if (!symbol.has_value()) {
      throw make_exception("UnsatisfiedLinkError: " + method.name);
    }
    return execute_body(symbol->cls, *symbol->method, std::move(args));
  }
  return execute_body(cls, method, std::move(args));
}

Value Vm::execute_body(RuntimeClass* cls, const dex::Method& method,
                       std::vector<Value> args) {
  if (static_cast<int>(frames_.size()) >= limits_.max_call_depth) {
    throw make_exception("StackOverflowError");
  }
  frames_.push_back(Frame{cls, cls->name(), method.name});
  struct Pop {
    std::vector<Frame>* f;
    ~Pop() { f->pop_back(); }
  } pop{&frames_};

  const auto& dexf = *cls->dex();
  std::vector<Value> regs(method.num_registers);
  for (std::size_t i = 0; i < args.size() && i < regs.size(); ++i) {
    regs[i] = std::move(args[i]);
  }
  Value last_result;

  // Active exception handlers: (message register, handler pc). Pushed by
  // TryEnter, popped by TryExit or when an exception dispatches.
  std::vector<std::pair<std::uint16_t, std::int32_t>> handlers;

  std::size_t pc = 0;
  while (pc < method.code.size()) {
    if (++steps_ > limits_.max_steps_per_entry) {
      throw make_exception("ANR: step budget exhausted");
    }
    const auto& ins = method.code[pc];
    using dex::Op;
    try {
    switch (ins.op) {
      case Op::Nop:
        break;
      case Op::ConstInt:
        regs[ins.a] = Value(ins.imm);
        break;
      case Op::ConstStr:
        regs[ins.a] = Value(dexf.string_at(ins.name));
        break;
      case Op::Move:
        regs[ins.a] = regs[ins.b];
        break;
      case Op::MoveResult:
        regs[ins.a] = last_result;
        break;
      case Op::Add:
      case Op::Sub:
      case Op::Mul:
      case Op::Div:
      case Op::Rem:
      case Op::Concat:
      case Op::CmpEq:
      case Op::CmpLt: {
        Value out;
        switch (ins.op) {
          case Op::Add:
            out = Value(regs[ins.b].as_int() + regs[ins.c].as_int());
            break;
          case Op::Sub:
            out = Value(regs[ins.b].as_int() - regs[ins.c].as_int());
            break;
          case Op::Mul:
            out = Value(regs[ins.b].as_int() * regs[ins.c].as_int());
            break;
          case Op::Div: {
            const auto d = regs[ins.c].as_int();
            if (d == 0) throw make_exception("ArithmeticException: / by zero");
            out = Value(regs[ins.b].as_int() / d);
            break;
          }
          case Op::Rem: {
            const auto d = regs[ins.c].as_int();
            if (d == 0) throw make_exception("ArithmeticException: % by zero");
            out = Value(regs[ins.b].as_int() % d);
            break;
          }
          case Op::Concat:
            out = Value(regs[ins.b].display() + regs[ins.c].display());
            break;
          case Op::CmpEq:
            out = Value(regs[ins.b].equals(regs[ins.c]) ? 1 : 0);
            break;
          default:
            out = Value(regs[ins.b].as_int() < regs[ins.c].as_int() ? 1 : 0);
            break;
        }
        // TaintDroid-style data-flow propagation through arithmetic.
        out.add_taint(regs[ins.b].taint() | regs[ins.c].taint());
        regs[ins.a] = std::move(out);
        break;
      }
      case Op::IfEqz:
        if (!regs[ins.a].truthy()) {
          pc = static_cast<std::size_t>(ins.target);
          continue;
        }
        break;
      case Op::IfNez:
        if (regs[ins.a].truthy()) {
          pc = static_cast<std::size_t>(ins.target);
          continue;
        }
        break;
      case Op::Goto:
        pc = static_cast<std::size_t>(ins.target);
        continue;
      case Op::NewInstance: {
        const auto& name = dexf.string_at(ins.cls);
        RuntimeClass* rt = nullptr;
        try {
          rt = load_class(cls->loader(), name);
        } catch (const VmException&) {
          rt = nullptr;
        }
        if (rt != nullptr && rt->is_framework()) rt = nullptr;
        if (rt == nullptr && !is_framework_class(name) &&
            framework_super_.find(name) == framework_super_.end()) {
          throw make_exception("ClassNotFoundException: " + name);
        }
        regs[ins.a] = Value(make_object(name, rt));
        break;
      }
      case Op::InvokeStatic:
      case Op::InvokeVirtual:
        last_result = dispatch_invoke(cls, dexf, ins, regs);
        break;
      case Op::IGet: {
        const auto& obj = regs[ins.b];
        if (!obj.is_obj() || obj.as_obj() == nullptr) {
          throw make_exception("NullPointerException: iget");
        }
        regs[ins.a] = obj.as_obj()->get_field(dexf.string_at(ins.name));
        break;
      }
      case Op::IPut: {
        const auto& obj = regs[ins.b];
        if (!obj.is_obj() || obj.as_obj() == nullptr) {
          throw make_exception("NullPointerException: iput");
        }
        obj.as_obj()->set_field(dexf.string_at(ins.name), regs[ins.a]);
        break;
      }
      case Op::SGet: {
        auto* rt = load_class(cls->loader(), dexf.string_at(ins.cls));
        regs[ins.a] = rt->get_static(dexf.string_at(ins.name));
        break;
      }
      case Op::SPut: {
        auto* rt = load_class(cls->loader(), dexf.string_at(ins.cls));
        rt->set_static(dexf.string_at(ins.name), regs[ins.a]);
        break;
      }
      case Op::Return:
        return regs[ins.a];
      case Op::ReturnVoid:
        return Value();
      case Op::Throw:
        throw make_exception(regs[ins.a].display());
      case Op::TryEnter:
        handlers.emplace_back(ins.a, ins.target);
        break;
      case Op::TryExit:
        if (!handlers.empty()) handlers.pop_back();
        break;
    }
    } catch (const VmException& e) {
      // Budget violations are fatal by design: apps must not be able to
      // catch their way around the ANR/recursion guards.
      const std::string what = e.what();
      if (handlers.empty() || what.rfind("ANR", 0) == 0 ||
          what.rfind("StackOverflowError", 0) == 0) {
        throw;
      }
      const auto [reg, handler_pc] = handlers.back();
      handlers.pop_back();
      regs[reg] = Value(what);
      pc = static_cast<std::size_t>(handler_pc);
      continue;
    }
    ++pc;
  }
  return Value();
}

Value Vm::dispatch_invoke(RuntimeClass* caller_cls, const dex::DexFile& dexf,
                          const dex::Instruction& ins,
                          std::vector<Value>& regs) {
  const auto& cls_name = dexf.string_at(ins.cls);
  const auto& method_name = dexf.string_at(ins.name);
  std::vector<Value> args;
  args.reserve(ins.argc);
  for (std::uint8_t i = 0; i < ins.argc; ++i) args.push_back(regs[ins.args[i]]);

  if (ins.op == dex::Op::InvokeVirtual) {
    if (args.empty() || !args[0].is_obj() || args[0].as_obj() == nullptr) {
      throw make_exception("NullPointerException: invoke-virtual on null (" +
                           cls_name + "." + method_name + ")");
    }
    const auto& receiver = args[0].as_obj();
    if (auto* start = receiver->rt_class()) {
      const dex::Method* m = nullptr;
      if (auto* owner = resolve_app_method(start, method_name, &m)) {
        return invoke(owner, *m, std::move(args));
      }
    }
    // Framework object, or app class inheriting a framework method:
    // dispatch by the receiver's dynamic class first, then superclass walk,
    // then by the declared class.
    if (find_intrinsic(receiver->class_name(), method_name) != nullptr) {
      return call_intrinsic(receiver->class_name(), method_name,
                            std::move(args));
    }
    if (auto* start = receiver->rt_class()) {
      // Walk to the nearest framework superclass name for intrinsic lookup.
      RuntimeClass* rc = start;
      int hops = 0;
      while (rc != nullptr && !rc->is_framework() && hops++ < 32) {
        const auto& super = rc->super_name();
        if (super.empty()) break;
        if (find_intrinsic(super, method_name) != nullptr) {
          return call_intrinsic(super, method_name, std::move(args));
        }
        RuntimeClass* next = nullptr;
        try {
          next = load_class(rc->loader(), super);
        } catch (const VmException&) {
          break;
        }
        if (next->is_framework()) break;
        rc = next;
      }
    }
    return call_intrinsic(cls_name, method_name, std::move(args));
  }

  // InvokeStatic: app classes first (through the caller's loader), then
  // framework intrinsics.
  RuntimeClass* rt = nullptr;
  try {
    rt = load_class(caller_cls->loader(), cls_name);
  } catch (const VmException&) {
    rt = nullptr;
  }
  if (rt != nullptr && !rt->is_framework()) {
    if (const auto* m = rt->def()->find_method(method_name)) {
      return invoke(rt, *m, std::move(args));
    }
  }
  return call_intrinsic(cls_name, method_name, std::move(args));
}

LoaderState* Vm::create_runtime_loader(LoaderKind kind,
                                       const std::string& dex_path,
                                       const std::string& optimized_dir,
                                       LoaderState* parent) {
  if (hooks_.on_dex_load) {
    hooks_.on_dex_load(kind, dex_path, optimized_dir, current_stack_trace());
  }
  auto* loader = new_loader(kind == LoaderKind::DexClassLoader
                                ? LoaderType::RuntimeDex
                                : LoaderType::RuntimePath,
                            parent != nullptr ? parent : app_loader_);
  for (const auto& path : support::split(dex_path, ':')) {
    if (path.empty()) continue;
    const auto bytes = read_file_or_throw(path);
    std::shared_ptr<const dex::DexFile> parsed;
    try {
      if (apk::looks_like_apk(bytes)) {
        const auto pkg = apk::ApkFile::deserialize(bytes);
        auto inner = pkg.read_classes_dex();
        if (!inner.has_value()) {
          throw make_exception("IOException: no classes.dex in " + path);
        }
        parsed = std::make_shared<const dex::DexFile>(*std::move(inner));
      } else if (dex::looks_like_dex(bytes)) {
        parsed =
            std::make_shared<const dex::DexFile>(dex::DexFile::deserialize(bytes));
      } else {
        throw make_exception("IOException: not a dex/apk file: " + path);
      }
    } catch (const support::ParseError& e) {
      throw make_exception(std::string("IOException: bad dex: ") + e.what());
    }
    loader->add_dex(std::move(parsed));
    if (!optimized_dir.empty()) {
      // Emit the odex by-product; best-effort (a full disk must not crash
      // the load itself).
      const auto odex = optimized_dir + "/" + basename_no_ext(path) + ".odex";
      const auto status =
          device_->vfs().write_file(app_.principal(), odex, bytes);
      if (!status) record_event("odex_write_failed", status.error());
    }
  }
  return loader;
}

void Vm::load_native_library(const std::string& path) {
  if (hooks_.on_native_load) {
    hooks_.on_native_load(path, current_stack_trace());
  }
  if (path.starts_with(os::kSystemLibDir)) {
    // Trusted OS-vendor library: modelled as an opaque success.
    return;
  }
  for (const auto& loaded : natives_) {
    if (loaded->path == path) return;  // already linked
  }
  const auto bytes = read_file_or_throw(path);
  nativebin::NativeLibrary lib;
  try {
    lib = nativebin::NativeLibrary::deserialize(bytes);
  } catch (const support::ParseError& e) {
    throw make_exception(std::string("UnsatisfiedLinkError: ") + e.what());
  }
  auto* loader = new_loader(LoaderType::NativeLib, boot_loader_);
  auto holder = std::make_unique<LoadedNative>();
  holder->path = path;
  holder->lib = std::move(lib);
  holder->loader = loader;
  loader->add_dex(std::make_shared<const dex::DexFile>(
      holder->lib.code()));  // copy: loader owns an immutable snapshot
  natives_.push_back(std::move(holder));
}

void Vm::load_native_library_by_name(const std::string& name) {
  const auto file = nativebin::map_library_name(name);
  const auto app_lib =
      os::internal_storage_dir(app_.package()) + "/lib/" + file;
  if (device_->vfs().exists(app_lib)) {
    load_native_library(app_lib);
    return;
  }
  const auto sys_lib = std::string(os::kSystemLibDir) + "/" + file;
  if (device_->vfs().exists(sys_lib)) {
    load_native_library(sys_lib);
    return;
  }
  throw make_exception("UnsatisfiedLinkError: library not found: " + name);
}

std::optional<Vm::NativeSymbol> Vm::find_native_symbol(std::string_view name) {
  for (const auto& loaded : natives_) {
    const auto symbol = loaded->lib.find_symbol(name);
    if (symbol.has_value()) {
      auto* rc = load_class(loaded->loader, symbol->cls->name);
      // Locate the method inside the loader's snapshot (the lib's own
      // DexFile copy), not the original.
      const auto* m = rc->def()->find_method(name);
      if (m != nullptr) return NativeSymbol{rc, m};
    }
  }
  return std::nullopt;
}

void Vm::record_event(std::string kind, std::string detail) {
  events_.push_back(VmEvent{std::move(kind), std::move(detail)});
}

support::Blob Vm::read_file_or_throw(const std::string& path) {
  auto data = device_->vfs().read_file(path);
  if (!data.has_value()) {
    throw make_exception("FileNotFoundException: " + path);
  }
  return *std::move(data);
}

void Vm::write_file_as_app(const std::string& path, support::Bytes data) {
  const auto status =
      device_->vfs().write_file(app_.principal(), path, std::move(data));
  if (!status) {
    throw make_exception("IOException: " + status.error());
  }
  if (hooks_.on_file_written) hooks_.on_file_written(path);
}

void Vm::emit_flow(const FlowNode& from, const FlowNode& to) {
  if (hooks_.on_flow) hooks_.on_flow(from, to);
}

}  // namespace dydroid::vm
