// Java-style stack traces (paper Figure 2). Element 0 is the innermost
// frame. DyDroid's entity identifier walks from the top past framework
// frames to find the call-site class of a DCL event.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace dydroid::vm {

struct StackTraceElement {
  std::string class_name;
  std::string method_name;
};

using StackTrace = std::vector<StackTraceElement>;

/// True for classes belonging to the OS/runtime (dalvik.*, java.*,
/// javax.*, android.*, libc) — skipped when locating a DCL call site.
bool is_framework_class(std::string_view class_name);

/// Render "cls.method <- cls.method <- ..." for logs.
std::string format_stack_trace(const StackTrace& trace);

}  // namespace dydroid::vm
