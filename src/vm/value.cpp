#include "vm/value.hpp"

#include <stdexcept>

namespace dydroid::vm {

std::int64_t Value::as_int() const {
  if (is_null()) return 0;
  if (const auto* i = std::get_if<std::int64_t>(&v_)) return *i;
  throw std::runtime_error("value is not an int: " + display());
}

const std::string& Value::as_str() const {
  if (const auto* s = std::get_if<std::string>(&v_)) return *s;
  throw std::runtime_error("value is not a string: " + display());
}

const ObjRef& Value::as_obj() const {
  if (const auto* o = std::get_if<ObjRef>(&v_)) return *o;
  throw std::runtime_error("value is not an object: " + display());
}

std::string Value::display() const {
  if (is_null()) return "null";
  if (const auto* i = std::get_if<std::int64_t>(&v_)) return std::to_string(*i);
  if (const auto* s = std::get_if<std::string>(&v_)) return *s;
  const auto& obj = std::get<ObjRef>(v_);
  if (obj == nullptr) return "null";
  return obj->class_name() + "@" + std::to_string(obj->id());
}

bool Value::equals(const Value& other) const {
  if (is_null() || other.is_null()) return is_null() && other.is_null();
  if (is_int() && other.is_int()) return as_int() == other.as_int();
  if (is_str() && other.is_str()) return as_str() == other.as_str();
  if (is_obj() && other.is_obj()) return as_obj() == other.as_obj();
  return false;
}

bool Value::truthy() const {
  if (is_null()) return false;
  if (is_int()) return as_int() != 0;
  if (is_str()) return !as_str().empty();
  return as_obj() != nullptr;
}

}  // namespace dydroid::vm
