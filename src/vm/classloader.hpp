// Class-loader hierarchy: BootClassLoader (framework intrinsics) at the
// root, the app's PathClassLoader over classes.dex, and any
// DexClassLoader/PathClassLoader instances the app creates at runtime —
// the paper's two DCL mediation points for bytecode.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "dex/dexfile.hpp"
#include "vm/value.hpp"

namespace dydroid::vm {

class LoaderState;

/// A class resolved at runtime: its defining DexFile (kept alive via
/// shared_ptr), its ClassDef, defining loader, and static fields.
class RuntimeClass {
 public:
  RuntimeClass(std::string name, std::shared_ptr<const dex::DexFile> dex,
               const dex::ClassDef* def, LoaderState* loader)
      : name_(std::move(name)),
        dex_(std::move(dex)),
        def_(def),
        loader_(loader) {}

  [[nodiscard]] const std::string& name() const { return name_; }
  /// Null for synthetic framework classes served by the boot loader.
  [[nodiscard]] const dex::ClassDef* def() const { return def_; }
  [[nodiscard]] const dex::DexFile* dex() const { return dex_.get(); }
  [[nodiscard]] LoaderState* loader() const { return loader_; }
  [[nodiscard]] bool is_framework() const { return def_ == nullptr; }
  [[nodiscard]] const std::string& super_name() const {
    static const std::string kEmpty;
    return def_ == nullptr ? kEmpty : def_->super_name;
  }

  /// Static field storage (values live in vm::Value; stored here keyed by
  /// field name).
  [[nodiscard]] Value get_static(const std::string& field) const {
    const auto it = statics_.find(field);
    return it == statics_.end() ? Value() : it->second;
  }
  void set_static(const std::string& field, Value v) {
    statics_[field] = std::move(v);
  }

 private:
  std::string name_;
  std::shared_ptr<const dex::DexFile> dex_;
  const dex::ClassDef* def_;
  LoaderState* loader_;
  std::map<std::string, Value> statics_;
};

enum class LoaderType : std::uint8_t {
  Boot,
  AppPath,     // the app's initial PathClassLoader over classes.dex
  RuntimeDex,  // DexClassLoader created by the app
  RuntimePath, // PathClassLoader created by the app
  NativeLib,   // wraps a loaded SimNative's code pool
};

/// Mutable state behind a ClassLoader object.
class LoaderState {
 public:
  LoaderState(LoaderType type, LoaderState* parent)
      : type_(type), parent_(parent) {}

  [[nodiscard]] LoaderType type() const { return type_; }
  [[nodiscard]] LoaderState* parent() const { return parent_; }

  void add_dex(std::shared_ptr<const dex::DexFile> dexfile) {
    dexfiles_.push_back(std::move(dexfile));
  }
  [[nodiscard]] const std::vector<std::shared_ptr<const dex::DexFile>>&
  dexfiles() const {
    return dexfiles_;
  }

  /// Find a class defined by THIS loader's dex files (no delegation).
  struct Found {
    std::shared_ptr<const dex::DexFile> dex;
    const dex::ClassDef* def = nullptr;
  };
  [[nodiscard]] Found find_local(std::string_view name) const {
    for (const auto& d : dexfiles_) {
      if (const auto* def = d->find_class(name)) return Found{d, def};
    }
    return Found{};
  }

  /// Cache of classes this loader has defined.
  [[nodiscard]] RuntimeClass* cached(const std::string& name) const {
    const auto it = defined_.find(name);
    return it == defined_.end() ? nullptr : it->second.get();
  }
  RuntimeClass* define(std::unique_ptr<RuntimeClass> cls) {
    auto* raw = cls.get();
    defined_[raw->name()] = std::move(cls);
    return raw;
  }

 private:
  LoaderType type_;
  LoaderState* parent_;
  std::vector<std::shared_ptr<const dex::DexFile>> dexfiles_;
  std::map<std::string, std::unique_ptr<RuntimeClass>> defined_;
};

}  // namespace dydroid::vm
