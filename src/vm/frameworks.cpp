#include "vm/frameworks.hpp"

#include <algorithm>

#include "apk/apk.hpp"
#include "support/hash.hpp"
#include "support/strings.hpp"
#include "vm/vm.hpp"

namespace dydroid::vm {

std::string_view flow_node_kind_name(FlowNodeKind kind) {
  switch (kind) {
    case FlowNodeKind::Url: return "URL";
    case FlowNodeKind::InputStream: return "InputStream";
    case FlowNodeKind::Buffer: return "Buffer";
    case FlowNodeKind::OutputStream: return "OutputStream";
    case FlowNodeKind::File: return "File";
  }
  return "?";
}

namespace {

using support::Bytes;

// ---------------------------------------------------------------------------
// Native state carried by framework objects.
// ---------------------------------------------------------------------------

struct LoaderHandle {
  LoaderState* loader = nullptr;
};

struct ClassHandle {
  RuntimeClass* cls = nullptr;
};

struct MethodHandle {
  RuntimeClass* cls = nullptr;
  const dex::Method* method = nullptr;
};

struct InputStreamState {
  support::Blob data;  // snapshot view of the source (file entry, asset…)
  std::size_t pos = 0;
  ObjRef inner;  // set for wrapping streams (BufferedInputStream)
};

struct OutputStreamState {
  std::string path;      // file-backed streams
  bool is_network = false;
  std::string url;       // network-backed streams
  Bytes written;
};

struct BufferState {
  Bytes data;
};

constexpr std::size_t kReadChunk = 4096;
constexpr std::string_view kBufferClass = "byte[]";

// ---------------------------------------------------------------------------
// Small helpers.
// ---------------------------------------------------------------------------

FlowNode obj_node(FlowNodeKind kind, const ObjRef& obj,
                  std::string label = {}) {
  return FlowNode{kind, obj->id(), std::move(label)};
}

FlowNode file_node(std::string path) {
  return FlowNode{FlowNodeKind::File, 0, std::move(path)};
}

/// Resolve a java.io.File argument that may be a File object or a string.
std::string path_of(Vm& vm, const Value& v) {
  if (v.is_str()) return v.as_str();
  if (v.is_obj() && v.as_obj() != nullptr) {
    const auto path = v.as_obj()->get_field("path");
    if (path.is_str()) return path.as_str();
  }
  throw vm.make_exception("IllegalArgumentException: expected path");
}

const Value& arg(Vm& vm, const std::vector<Value>& args, std::size_t i) {
  if (i >= args.size()) {
    throw vm.make_exception("IllegalArgumentException: missing argument " +
                            std::to_string(i));
  }
  return args[i];
}

ObjRef make_buffer(Vm& vm, Bytes data) {
  auto buf = vm.make_object(kBufferClass);
  buf->native_state() = BufferState{std::move(data)};
  return buf;
}

Bytes& buffer_bytes(Vm& vm, const Value& v) {
  if (!v.is_obj() || v.as_obj() == nullptr) {
    throw vm.make_exception("IllegalArgumentException: expected buffer");
  }
  auto* state = std::any_cast<BufferState>(&v.as_obj()->native_state());
  if (state == nullptr) {
    throw vm.make_exception("IllegalArgumentException: not a buffer");
  }
  return state->data;
}

LoaderState* loader_of(Vm& vm, const Value& v) {
  if (v.is_obj() && v.as_obj() != nullptr) {
    if (const auto* h =
            std::any_cast<LoaderHandle>(&v.as_obj()->native_state())) {
      return h->loader;
    }
  }
  throw vm.make_exception("IllegalArgumentException: not a class loader");
}

/// Recursively read one chunk from a (possibly wrapped) input stream.
Value stream_read(Vm& vm, const ObjRef& stream) {
  auto* state = std::any_cast<InputStreamState>(&stream->native_state());
  if (state == nullptr) {
    throw vm.make_exception("IOException: not an input stream");
  }
  if (state->inner != nullptr) {
    // Wrapper: pull a chunk from the wrapped stream; flows Inner->Wrapper
    // were emitted at construction, Wrapper->Buffer is emitted below by the
    // caller on our own node.
    auto chunk = stream_read(vm, state->inner);
    if (chunk.is_null()) return chunk;
    vm.emit_flow(obj_node(FlowNodeKind::InputStream, state->inner),
                 obj_node(FlowNodeKind::InputStream, stream));
    vm.emit_flow(obj_node(FlowNodeKind::InputStream, stream),
                 obj_node(FlowNodeKind::Buffer, chunk.as_obj()));
    return chunk;
  }
  if (state->pos >= state->data.size()) return Value();  // EOF -> null
  const auto n = std::min(kReadChunk, state->data.size() - state->pos);
  Bytes chunk(state->data.begin() + static_cast<std::ptrdiff_t>(state->pos),
              state->data.begin() + static_cast<std::ptrdiff_t>(state->pos + n));
  state->pos += n;
  auto buf = make_buffer(vm, std::move(chunk));
  vm.emit_flow(obj_node(FlowNodeKind::InputStream, stream),
               obj_node(FlowNodeKind::Buffer, buf));
  return Value(buf);
}

ObjRef make_input_stream(Vm& vm, std::string_view cls, support::Blob data) {
  auto obj = vm.make_object(cls);
  obj->native_state() = InputStreamState{std::move(data), 0, nullptr};
  return obj;
}

std::string url_of_connection(Vm& vm, const ObjRef& conn) {
  const auto url = conn->get_field("url");
  if (!url.is_str()) throw vm.make_exception("IOException: bad connection");
  return url.as_str();
}

FlowNode url_node_of_connection(const ObjRef& conn) {
  const auto id = conn->get_field("url_obj_id");
  return FlowNode{FlowNodeKind::Url,
                  static_cast<std::uint64_t>(id.is_int() ? id.as_int() : 0),
                  conn->get_field("url").is_str()
                      ? conn->get_field("url").as_str()
                      : std::string()};
}

// ---------------------------------------------------------------------------
// Registration groups.
// ---------------------------------------------------------------------------

void install_loaders(Vm& vm) {
  vm.register_framework_class("java.lang.ClassLoader");
  vm.register_framework_class("dalvik.system.DexClassLoader",
                              "java.lang.ClassLoader");
  vm.register_framework_class("dalvik.system.PathClassLoader",
                              "java.lang.ClassLoader");

  vm.register_intrinsic(
      "dalvik.system.DexClassLoader", "<init>",
      [](Vm& v, const std::vector<Value>& args) -> Value {
        const auto& self = arg(v, args, 0).as_obj();
        const auto dex_path = arg(v, args, 1).as_str();
        const auto opt_dir =
            args.size() > 2 && args[2].is_str() ? args[2].as_str() : "";
        LoaderState* parent = nullptr;
        if (args.size() > 4 && args[4].is_obj() && args[4].as_obj()) {
          parent = loader_of(v, args[4]);
        }
        auto* loader = v.create_runtime_loader(LoaderKind::DexClassLoader,
                                               dex_path, opt_dir, parent);
        self->native_state() = LoaderHandle{loader};
        return Value();
      });

  vm.register_intrinsic(
      "dalvik.system.PathClassLoader", "<init>",
      [](Vm& v, const std::vector<Value>& args) -> Value {
        const auto& self = arg(v, args, 0).as_obj();
        const auto dex_path = arg(v, args, 1).as_str();
        LoaderState* parent = nullptr;
        if (args.size() > 2 && args[2].is_obj() && args[2].as_obj()) {
          parent = loader_of(v, args[2]);
        }
        auto* loader = v.create_runtime_loader(LoaderKind::PathClassLoader,
                                               dex_path, "", parent);
        self->native_state() = LoaderHandle{loader};
        return Value();
      });

  vm.register_intrinsic(
      "java.lang.ClassLoader", "loadClass",
      [](Vm& v, const std::vector<Value>& args) -> Value {
        auto* loader = loader_of(v, arg(v, args, 0));
        const auto& name = arg(v, args, 1).as_str();
        auto* rc = v.load_class(loader, name);
        auto cls_obj = v.make_object("java.lang.Class");
        cls_obj->native_state() = ClassHandle{rc};
        cls_obj->set_field("name", Value(name));
        return Value(cls_obj);
      });

  vm.register_framework_class("java.lang.Class");
  vm.register_intrinsic(
      "java.lang.Class", "newInstance",
      [](Vm& v, const std::vector<Value>& args) -> Value {
        const auto* h =
            std::any_cast<ClassHandle>(&arg(v, args, 0).as_obj()->native_state());
        if (h == nullptr || h->cls == nullptr) {
          throw v.make_exception("InstantiationException");
        }
        auto* rc = h->cls;
        auto obj = v.make_object(rc->name(), rc->is_framework() ? nullptr : rc);
        if (!rc->is_framework()) {
          if (const auto* init = rc->def()->find_method("<init>");
              init != nullptr && init->num_params == 1) {
            v.invoke(rc, *init, {Value(obj)});
          }
        }
        return Value(obj);
      });
  vm.register_intrinsic(
      "java.lang.Class", "getName",
      [](Vm& v, const std::vector<Value>& args) -> Value {
        return arg(v, args, 0).as_obj()->get_field("name");
      });
  vm.register_intrinsic(
      "java.lang.Class", "getMethod",
      [](Vm& v, const std::vector<Value>& args) -> Value {
        const auto* h =
            std::any_cast<ClassHandle>(&arg(v, args, 0).as_obj()->native_state());
        const auto& name = arg(v, args, 1).as_str();
        if (h == nullptr || h->cls == nullptr || h->cls->is_framework()) {
          throw v.make_exception("NoSuchMethodException: " + name);
        }
        const auto* m = h->cls->def()->find_method(name);
        if (m == nullptr) {
          throw v.make_exception("NoSuchMethodException: " + name);
        }
        auto method_obj = v.make_object("java.lang.reflect.Method");
        method_obj->native_state() = MethodHandle{h->cls, m};
        method_obj->set_field("name", Value(name));
        return Value(method_obj);
      });
  vm.register_intrinsic(
      "java.lang.Class", "forName",
      [](Vm& v, const std::vector<Value>& args) -> Value {
        const auto& name = arg(v, args, 0).as_str();
        auto* rc = v.load_class(v.current_loader(), name);
        auto cls_obj = v.make_object("java.lang.Class");
        cls_obj->native_state() = ClassHandle{rc};
        cls_obj->set_field("name", Value(name));
        return Value(cls_obj);
      });

  vm.register_framework_class("java.lang.reflect.Method");
  vm.register_intrinsic(
      "java.lang.reflect.Method", "invoke",
      [](Vm& v, const std::vector<Value>& args) -> Value {
        const auto* h = std::any_cast<MethodHandle>(
            &arg(v, args, 0).as_obj()->native_state());
        if (h == nullptr || h->method == nullptr) {
          throw v.make_exception("IllegalArgumentException: bad Method");
        }
        std::vector<Value> call_args;
        if (!h->method->is_static()) {
          call_args.push_back(arg(v, args, 1));
        }
        for (std::size_t i = 2; i < args.size(); ++i) {
          call_args.push_back(args[i]);
        }
        return v.invoke(h->cls, *h->method, std::move(call_args));
      });
}

void install_native_loading(Vm& vm) {
  vm.register_framework_class("java.lang.System");
  vm.register_framework_class("java.lang.Runtime");

  auto load_by_name = [](Vm& v, const std::vector<Value>& args,
                         std::size_t idx) -> Value {
    v.load_native_library_by_name(arg(v, args, idx).as_str());
    return Value();
  };
  auto load_by_path = [](Vm& v, const std::vector<Value>& args,
                         std::size_t idx) -> Value {
    v.load_native_library(arg(v, args, idx).as_str());
    return Value();
  };

  vm.register_intrinsic("java.lang.System", "loadLibrary",
                        [load_by_name](Vm& v, const std::vector<Value>& a) {
                          return load_by_name(v, a, 0);
                        });
  vm.register_intrinsic("java.lang.System", "load",
                        [load_by_path](Vm& v, const std::vector<Value>& a) {
                          return load_by_path(v, a, 0);
                        });
  vm.register_intrinsic(
      "java.lang.System", "mapLibraryName",
      [](Vm& v, const std::vector<Value>& args) -> Value {
        return Value(nativebin::map_library_name(arg(v, args, 0).as_str()));
      });
  vm.register_intrinsic("java.lang.System", "currentTimeMillis",
                        [](Vm& v, const std::vector<Value>&) -> Value {
                          return Value(v.device().services().current_time_ms());
                        });

  vm.register_intrinsic("java.lang.Runtime", "getRuntime",
                        [](Vm& v, const std::vector<Value>&) -> Value {
                          return Value(v.make_object("java.lang.Runtime"));
                        });
  // Instance forms: receiver in args[0], operand in args[1].
  vm.register_intrinsic("java.lang.Runtime", "loadLibrary",
                        [load_by_name](Vm& v, const std::vector<Value>& a) {
                          return load_by_name(v, a, 1);
                        });
  vm.register_intrinsic("java.lang.Runtime", "load",
                        [load_by_path](Vm& v, const std::vector<Value>& a) {
                          return load_by_path(v, a, 1);
                        });
  // Android 7.1 adds Runtime.load0 (paper §III-B): one extra hook adapts the
  // system to the latest OS.
  vm.register_intrinsic("java.lang.Runtime", "load0",
                        [load_by_path](Vm& v, const std::vector<Value>& a) {
                          return load_by_path(v, a, 1);
                        });

  vm.register_framework_class("java.lang.Thread");
  vm.register_intrinsic("java.lang.Thread", "sleep",
                        [](Vm& v, const std::vector<Value>& args) -> Value {
                          v.device().services().advance_ms(
                              args.empty() ? 0 : arg(v, args, 0).as_int());
                          return Value();
                        });
}

void install_files(Vm& vm) {
  vm.register_framework_class("java.io.File");
  vm.register_intrinsic(
      "java.io.File", "<init>",
      [](Vm& v, const std::vector<Value>& args) -> Value {
        const auto& self = arg(v, args, 0).as_obj();
        std::string path;
        if (args.size() >= 3) {
          path = path_of(v, args[1]) + "/" + args[2].as_str();
        } else {
          path = path_of(v, arg(v, args, 1));
        }
        self->set_field("path", Value(std::move(path)));
        return Value();
      });
  vm.register_intrinsic("java.io.File", "getPath",
                        [](Vm& v, const std::vector<Value>& args) -> Value {
                          return arg(v, args, 0).as_obj()->get_field("path");
                        });
  vm.register_intrinsic("java.io.File", "getAbsolutePath",
                        [](Vm& v, const std::vector<Value>& args) -> Value {
                          return arg(v, args, 0).as_obj()->get_field("path");
                        });
  vm.register_intrinsic(
      "java.io.File", "exists",
      [](Vm& v, const std::vector<Value>& args) -> Value {
        return Value(
            v.device().vfs().exists(path_of(v, arg(v, args, 0))) ? 1 : 0);
      });
  vm.register_intrinsic(
      "java.io.File", "length",
      [](Vm& v, const std::vector<Value>& args) -> Value {
        const auto data =
            v.device().vfs().read_file(path_of(v, arg(v, args, 0)));
        return Value(
            static_cast<std::int64_t>(data.has_value() ? data->size() : 0));
      });
  vm.register_intrinsic("java.io.File", "mkdirs",
                        [](Vm&, const std::vector<Value>&) -> Value {
                          return Value(1);  // directories are implicit
                        });
  vm.register_intrinsic(
      "java.io.File", "delete",
      [](Vm& v, const std::vector<Value>& args) -> Value {
        const auto path = path_of(v, arg(v, args, 0));
        auto& hooks = v.instrumentation();
        if (hooks.allow_file_delete && !hooks.allow_file_delete(path)) {
          // Instrumented java.io.File: silently fail (paper §III-B) so the
          // interceptor can still copy the binary.
          return Value(0);
        }
        const auto status =
            v.device().vfs().delete_file(v.app().principal(), path);
        return Value(status ? 1 : 0);
      });
  vm.register_intrinsic(
      "java.io.File", "renameTo",
      [](Vm& v, const std::vector<Value>& args) -> Value {
        const auto from = path_of(v, arg(v, args, 0));
        const auto to = path_of(v, arg(v, args, 1));
        auto& hooks = v.instrumentation();
        if (hooks.allow_file_rename && !hooks.allow_file_rename(from, to)) {
          return Value(0);
        }
        const auto status =
            v.device().vfs().rename(v.app().principal(), from, to);
        if (status) {
          v.emit_flow(file_node(from), file_node(to));
          if (hooks.on_file_written) hooks.on_file_written(to);
        }
        return Value(status ? 1 : 0);
      });

  // Input streams.
  vm.register_framework_class("java.io.InputStream");
  vm.register_framework_class("java.io.FileInputStream",
                              "java.io.InputStream");
  vm.register_framework_class("java.io.BufferedInputStream",
                              "java.io.InputStream");
  vm.register_intrinsic(
      "java.io.FileInputStream", "<init>",
      [](Vm& v, const std::vector<Value>& args) -> Value {
        const auto& self = arg(v, args, 0).as_obj();
        const auto path = path_of(v, arg(v, args, 1));
        auto data = v.read_file_or_throw(path);
        self->native_state() = InputStreamState{std::move(data), 0, nullptr};
        v.emit_flow(file_node(path),
                    obj_node(FlowNodeKind::InputStream, self));
        return Value();
      });
  vm.register_intrinsic(
      "java.io.BufferedInputStream", "<init>",
      [](Vm& v, const std::vector<Value>& args) -> Value {
        const auto& self = arg(v, args, 0).as_obj();
        const auto& inner = arg(v, args, 1).as_obj();
        self->native_state() = InputStreamState{{}, 0, inner};
        v.emit_flow(obj_node(FlowNodeKind::InputStream, inner),
                    obj_node(FlowNodeKind::InputStream, self));
        return Value();
      });
  vm.register_intrinsic(
      "java.io.InputStream", "read",
      [](Vm& v, const std::vector<Value>& args) -> Value {
        return stream_read(v, arg(v, args, 0).as_obj());
      });
  vm.register_intrinsic("java.io.InputStream", "close",
                        [](Vm&, const std::vector<Value>&) -> Value {
                          return Value();
                        });

  // Output streams.
  vm.register_framework_class("java.io.OutputStream");
  vm.register_framework_class("java.io.FileOutputStream",
                              "java.io.OutputStream");
  vm.register_intrinsic(
      "java.io.FileOutputStream", "<init>",
      [](Vm& v, const std::vector<Value>& args) -> Value {
        const auto& self = arg(v, args, 0).as_obj();
        const auto path = path_of(v, arg(v, args, 1));
        self->native_state() = OutputStreamState{path, false, "", {}};
        return Value();
      });
  vm.register_intrinsic(
      "java.io.OutputStream", "write",
      [](Vm& v, const std::vector<Value>& args) -> Value {
        const auto& self = arg(v, args, 0).as_obj();
        auto* state = std::any_cast<OutputStreamState>(&self->native_state());
        if (state == nullptr) {
          throw v.make_exception("IOException: not an output stream");
        }
        const auto& chunk = buffer_bytes(v, arg(v, args, 1));
        v.emit_flow(obj_node(FlowNodeKind::Buffer, arg(v, args, 1).as_obj()),
                    obj_node(FlowNodeKind::OutputStream, self));
        state->written.insert(state->written.end(), chunk.begin(),
                              chunk.end());
        if (state->is_network) {
          v.record_event("net_write",
                         state->url + " bytes=" +
                             std::to_string(state->written.size()));
        } else {
          // Write-through so a concurrent load sees the full prefix, then
          // flow OutputStream -> File.
          v.write_file_as_app(state->path, state->written);
          v.emit_flow(obj_node(FlowNodeKind::OutputStream, self),
                      file_node(state->path));
        }
        return Value();
      });
  vm.register_intrinsic("java.io.OutputStream", "close",
                        [](Vm&, const std::vector<Value>&) -> Value {
                          return Value();
                        });
}

void install_network(Vm& vm) {
  vm.register_framework_class("java.net.URL");
  vm.register_framework_class("java.net.URLConnection");
  vm.register_framework_class("java.net.HttpURLConnection",
                              "java.net.URLConnection");
  vm.register_framework_class("java.net.HttpsURLConnection",
                              "java.net.HttpURLConnection");
  vm.register_framework_class("java.net.FtpURLConnection",
                              "java.net.URLConnection");

  vm.register_intrinsic(
      "java.net.URL", "<init>",
      [](Vm& v, const std::vector<Value>& args) -> Value {
        const auto& self = arg(v, args, 0).as_obj();
        const auto& spec = arg(v, args, 1).as_str();
        self->set_field("url", Value(spec));
        auto& hooks = v.instrumentation();
        if (hooks.on_url_created) {
          hooks.on_url_created(obj_node(FlowNodeKind::Url, self, spec));
        }
        return Value();
      });
  vm.register_intrinsic(
      "java.net.URL", "openConnection",
      [](Vm& v, const std::vector<Value>& args) -> Value {
        const auto& self = arg(v, args, 0).as_obj();
        auto conn = v.make_object("java.net.HttpURLConnection");
        conn->set_field("url", self->get_field("url"));
        conn->set_field("url_obj_id",
                        Value(static_cast<std::int64_t>(self->id())));
        return Value(conn);
      });

  auto open_input = [](Vm& v, const std::string& url, const FlowNode& url_node)
      -> Value {
    auto fetched = v.device().network().fetch(url);
    if (!fetched) {
      throw v.make_exception("IOException: " + fetched.error());
    }
    auto stream =
        make_input_stream(v, "java.io.FileInputStream",
                          support::Blob::take(std::move(fetched).take()));
    // The stream is network-sourced, not file-sourced; present it as a
    // plain InputStream node fed by the URL (Table I: URL -> InputStream).
    v.emit_flow(url_node, obj_node(FlowNodeKind::InputStream, stream));
    return Value(stream);
  };

  vm.register_intrinsic(
      "java.net.URL", "openStream",
      [open_input](Vm& v, const std::vector<Value>& args) -> Value {
        const auto& self = arg(v, args, 0).as_obj();
        const auto url = self->get_field("url").as_str();
        return open_input(v, url, obj_node(FlowNodeKind::Url, self, url));
      });
  vm.register_intrinsic(
      "java.net.URLConnection", "getInputStream",
      [open_input](Vm& v, const std::vector<Value>& args) -> Value {
        const auto& conn = arg(v, args, 0).as_obj();
        return open_input(v, url_of_connection(v, conn),
                          url_node_of_connection(conn));
      });
  vm.register_intrinsic(
      "java.net.URLConnection", "getOutputStream",
      [](Vm& v, const std::vector<Value>& args) -> Value {
        const auto& conn = arg(v, args, 0).as_obj();
        auto stream = v.make_object("java.io.FileOutputStream");
        stream->native_state() =
            OutputStreamState{"", true, url_of_connection(v, conn), {}};
        return Value(stream);
      });
  vm.register_intrinsic("java.net.URLConnection", "connect",
                        [](Vm&, const std::vector<Value>&) -> Value {
                          return Value();
                        });
  vm.register_intrinsic(
      "java.net.HttpURLConnection", "getResponseCode",
      [](Vm& v, const std::vector<Value>& args) -> Value {
        const auto& conn = arg(v, args, 0).as_obj();
        auto fetched = v.device().network().fetch(url_of_connection(v, conn));
        return Value(fetched ? 200 : 404);
      });
}

void install_privacy_sources(Vm& vm) {
  vm.register_intrinsic("android.telephony.TelephonyManager", "getDeviceId",
                        [](Vm& v, const std::vector<Value>&) -> Value {
                          return Value(v.device().services().imei());
                        });
  vm.register_intrinsic("android.telephony.TelephonyManager",
                        "getSubscriberId",
                        [](Vm& v, const std::vector<Value>&) -> Value {
                          return Value(v.device().services().imsi());
                        });
  vm.register_intrinsic("android.telephony.TelephonyManager",
                        "getSimSerialNumber",
                        [](Vm& v, const std::vector<Value>&) -> Value {
                          return Value(v.device().services().iccid());
                        });
  vm.register_intrinsic("android.telephony.TelephonyManager",
                        "getLine1Number",
                        [](Vm& v, const std::vector<Value>&) -> Value {
                          return Value(v.device().services().line1_number());
                        });
  vm.register_intrinsic(
      "android.location.LocationManager", "getLastKnownLocation",
      [](Vm& v, const std::vector<Value>&) -> Value {
        return Value(v.device().services().last_known_location());
      });
  vm.register_intrinsic(
      "android.location.LocationManager", "isProviderEnabled",
      [](Vm& v, const std::vector<Value>&) -> Value {
        return Value(v.device().services().location_enabled() ? 1 : 0);
      });
  vm.register_intrinsic(
      "android.accounts.AccountManager", "getAccounts",
      [](Vm& v, const std::vector<Value>&) -> Value {
        return Value(support::join(v.device().services().accounts(), ";"));
      });
  vm.register_intrinsic(
      "android.content.pm.PackageManager", "getInstalledApplications",
      [](Vm& v, const std::vector<Value>&) -> Value {
        return Value(support::join(
            v.device().package_manager().installed_packages(), ";"));
      });
  vm.register_intrinsic(
      "android.content.pm.PackageManager", "getInstalledPackages",
      [](Vm& v, const std::vector<Value>&) -> Value {
        return Value(support::join(
            v.device().package_manager().installed_packages(), ";"));
      });
  vm.register_intrinsic(
      "android.content.ContentResolver", "query",
      [](Vm& v, const std::vector<Value>& args) -> Value {
        const auto& uri = arg(v, args, 0).as_str();
        return Value(
            support::join(v.device().services().query_provider(uri), ";"));
      });
}

void install_sinks_and_services(Vm& vm) {
  vm.register_intrinsic(
      "android.util.Log", "d",
      [](Vm& v, const std::vector<Value>& args) -> Value {
        v.record_event("log", (args.empty() ? "" : args[0].display()) + ": " +
                                  (args.size() > 1 ? args[1].display() : ""));
        return Value();
      });
  vm.register_intrinsic(
      "android.util.Log", "e",
      [](Vm& v, const std::vector<Value>& args) -> Value {
        v.record_event("log", (args.empty() ? "" : args[0].display()) + ": " +
                                  (args.size() > 1 ? args[1].display() : ""));
        return Value();
      });
  vm.register_intrinsic(
      "android.telephony.SmsManager", "sendTextMessage",
      [](Vm& v, const std::vector<Value>& args) -> Value {
        v.record_event("sms", (args.empty() ? "" : args[0].display()) + ": " +
                                  (args.size() > 1 ? args[1].display() : ""));
        return Value();
      });
  vm.register_intrinsic(
      "android.app.NotificationManager", "notify",
      [](Vm& v, const std::vector<Value>& args) -> Value {
        v.record_event("notification",
                       args.empty() ? "" : args[0].display());
        return Value();
      });
  vm.register_intrinsic(
      "com.android.launcher.Shortcut", "install",
      [](Vm& v, const std::vector<Value>& args) -> Value {
        v.record_event("shortcut", args.empty() ? "" : args[0].display());
        return Value();
      });
  vm.register_intrinsic(
      "android.provider.Browser", "setHomepage",
      [](Vm& v, const std::vector<Value>& args) -> Value {
        v.record_event("homepage", args.empty() ? "" : args[0].display());
        return Value();
      });

  vm.register_intrinsic(
      "android.net.ConnectivityManager", "isConnected",
      [](Vm& v, const std::vector<Value>&) -> Value {
        return Value(v.device().services().has_connectivity() ? 1 : 0);
      });
  vm.register_intrinsic(
      "android.provider.Settings", "isAirplaneModeOn",
      [](Vm& v, const std::vector<Value>&) -> Value {
        return Value(v.device().services().airplane_mode() ? 1 : 0);
      });
  vm.register_intrinsic(
      "android.net.wifi.WifiManager", "isWifiEnabled",
      [](Vm& v, const std::vector<Value>&) -> Value {
        return Value(v.device().services().wifi_enabled() ? 1 : 0);
      });
  vm.register_intrinsic(
      "android.os.Environment", "getExternalStorageDirectory",
      [](Vm&, const std::vector<Value>&) -> Value {
        return Value(std::string(os::kExternalStorageDir));
      });

  // Context conveniences (receiver optional; always answer for the host app).
  vm.register_framework_class("android.content.Context");
  vm.register_framework_class("android.app.Activity",
                              "android.content.Context");
  vm.register_framework_class("android.app.Application",
                              "android.content.Context");
  vm.register_framework_class("android.app.Service",
                              "android.content.Context");
  vm.register_framework_class("android.content.BroadcastReceiver");
  vm.register_framework_class("android.content.ContentProvider");

  vm.register_intrinsic(
      "android.content.Context", "getFilesDir",
      [](Vm& v, const std::vector<Value>&) -> Value {
        return Value(os::internal_storage_dir(v.app().package()) + "/files");
      });
  vm.register_intrinsic(
      "android.content.Context", "getCacheDir",
      [](Vm& v, const std::vector<Value>&) -> Value {
        return Value(os::internal_storage_dir(v.app().package()) + "/cache");
      });
  vm.register_intrinsic(
      "android.content.Context", "getPackageName",
      [](Vm& v, const std::vector<Value>&) -> Value {
        return Value(v.app().package());
      });
  // Package contexts: "an application can even use package contexts to
  // retrieve the classes contained in another application" (paper §II).
  // Returns a Context whose getClassLoader() is a PathClassLoader over the
  // other app's installed APK — mediated by the same loader hook.
  vm.register_intrinsic(
      "android.content.Context", "createPackageContext",
      [](Vm& v, const std::vector<Value>& args) -> Value {
        // Static-style: the target package is the last argument.
        const auto& pkg = arg(v, args, args.size() - 1).as_str();
        if (!v.device().package_manager().is_installed(pkg)) {
          throw v.make_exception("NameNotFoundException: " + pkg);
        }
        auto ctx = v.make_object("android.content.Context");
        ctx->set_field("package", Value(pkg));
        return Value(ctx);
      });
  vm.register_intrinsic(
      "android.content.Context", "getClassLoader",
      [](Vm& v, const std::vector<Value>& args) -> Value {
        const auto& self = arg(v, args, 0).as_obj();
        const auto pkg_field = self->get_field("package");
        const auto pkg =
            pkg_field.is_str() ? pkg_field.as_str() : v.app().package();
        const auto apk_path = std::string(os::kAppDir) + "/" + pkg + ".apk";
        auto* loader = v.create_runtime_loader(LoaderKind::PathClassLoader,
                                               apk_path, "", nullptr);
        auto loader_obj = v.make_object("dalvik.system.PathClassLoader");
        loader_obj->native_state() = LoaderHandle{loader};
        return Value(loader_obj);
      });
  // Lifecycle no-ops inherited by app components.
  for (const auto* method : {"<init>", "setContentView", "onCreate",
                             "finish"}) {
    vm.register_intrinsic("android.app.Activity", method,
                          [](Vm&, const std::vector<Value>&) -> Value {
                            return Value();
                          });
  }
  vm.register_intrinsic("android.app.Application", "<init>",
                        [](Vm&, const std::vector<Value>&) -> Value {
                          return Value();
                        });
  vm.register_intrinsic("android.app.Service", "<init>",
                        [](Vm&, const std::vector<Value>&) -> Value {
                          return Value();
                        });

  // Assets: open an entry from the installed APK.
  vm.register_intrinsic(
      "android.content.res.AssetManager", "open",
      [](Vm& v, const std::vector<Value>& args) -> Value {
        const auto& name = arg(v, args, 0).as_str();
        const auto apk_path =
            std::string(os::kAppDir) + "/" + v.app().package() + ".apk";
        const auto raw = v.read_file_or_throw(apk_path);
        apk::ApkFile pkg;
        try {
          pkg = apk::ApkFile::deserialize(raw);
        } catch (const support::ParseError& e) {
          throw v.make_exception(std::string("IOException: ") + e.what());
        }
        const auto entry =
            pkg.get(std::string(apk::kAssetsDirPrefix) + name);
        if (!entry.has_value()) {
          throw v.make_exception("FileNotFoundException: asset " + name);
        }
        auto stream =
            make_input_stream(v, "java.io.FileInputStream", *entry);
        v.emit_flow(file_node(apk_path),
                    obj_node(FlowNodeKind::InputStream, stream));
        return Value(stream);
      });
}

void install_strings_and_crypto(Vm& vm) {
  vm.register_intrinsic(
      "java.lang.String", "getBytes",
      [](Vm& v, const std::vector<Value>& args) -> Value {
        const auto& s = arg(v, args, 0).as_str();
        return Value(make_buffer(v, support::to_bytes(s)));
      });
  vm.register_intrinsic(
      "java.lang.String", "valueOf",
      [](Vm& v, const std::vector<Value>& args) -> Value {
        const auto& val = arg(v, args, 0);
        if (val.is_obj() && val.as_obj() != nullptr &&
            std::any_cast<BufferState>(&val.as_obj()->native_state()) !=
                nullptr) {
          return Value(support::to_string(buffer_bytes(v, val)));
        }
        return Value(val.display());
      });
  // Integrity verification primitive: apps that hash a file before loading
  // it are NOT code-injection vulnerable (paper: "manually confirmed that
  // even [the] developer fails to enforce integrity verification").
  vm.register_intrinsic(
      "java.security.MessageDigest", "digest",
      [](Vm& v, const std::vector<Value>& args) -> Value {
        const auto& val = arg(v, args, 0);
        std::span<const std::uint8_t> data;
        support::Blob file;  // keeps a by-path read alive for the hash
        if (val.is_str()) {
          // Hash a file by path.
          file = v.read_file_or_throw(val.as_str());
          data = file;
        } else {
          data = buffer_bytes(v, val);
        }
        return Value(static_cast<std::int64_t>(support::fnv1a64(data)));
      });
}

void install_libc(Vm& vm) {
  vm.register_intrinsic(
      "libc", "ptrace",
      [](Vm& v, const std::vector<Value>& args) -> Value {
        v.record_event("ptrace", args.empty() ? "" : args[0].display());
        return Value(1);
      });
  vm.register_intrinsic("libc", "su",
                        [](Vm& v, const std::vector<Value>&) -> Value {
                          v.record_event("su", "");
                          return Value(1);
                        });
  vm.register_intrinsic(
      "libc", "hook_method",
      [](Vm& v, const std::vector<Value>& args) -> Value {
        v.record_event("hook", args.empty() ? "" : args[0].display());
        return Value(1);
      });
  vm.register_intrinsic(
      "libc", "exec",
      [](Vm& v, const std::vector<Value>& args) -> Value {
        v.record_event("exec", args.empty() ? "" : args[0].display());
        return Value(0);
      });
  // Stream-cipher "decryption" used by packer stubs: XOR with a repeating
  // key. Takes a buffer + key string, returns a new buffer.
  vm.register_intrinsic(
      "libc", "xor_decrypt",
      [](Vm& v, const std::vector<Value>& args) -> Value {
        const auto& data = buffer_bytes(v, arg(v, args, 0));
        const auto& key = arg(v, args, 1).as_str();
        if (key.empty()) {
          throw v.make_exception("IllegalArgumentException: empty key");
        }
        Bytes out(data.size());
        for (std::size_t i = 0; i < data.size(); ++i) {
          out[i] = data[i] ^ static_cast<std::uint8_t>(key[i % key.size()]);
        }
        return Value(make_buffer(v, std::move(out)));
      });
}

}  // namespace

void install_framework(Vm& vm) {
  install_loaders(vm);
  install_native_loading(vm);
  install_files(vm);
  install_network(vm);
  install_privacy_sources(vm);
  install_sinks_and_services(vm);
  install_strings_and_crypto(vm);
  install_libc(vm);
}

}  // namespace dydroid::vm
