// MiniDalvik: the Dalvik-analogue virtual machine.
//
// One Vm instance hosts one app process on a SimDevice. The interpreter
// executes SimDex bytecode; framework classes are served as intrinsics
// (frameworks.cpp); every DCL-relevant API funnels through the
// Instrumentation observers, giving DyDroid complete mediation exactly as
// the paper's modified Android 4.3.1 image does.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "apk/apk.hpp"
#include "nativebin/native_library.hpp"
#include "os/device.hpp"
#include "vm/classloader.hpp"
#include "vm/instrumentation.hpp"
#include "vm/value.hpp"

namespace dydroid::vm {

/// Uncaught app-level exception (also: ClassNotFound, IO errors, ANR budget
/// exhaustion). Carries the VM stack trace at throw time.
class VmException : public std::runtime_error {
 public:
  VmException(const std::string& what, StackTrace trace)
      : std::runtime_error(what), trace_(std::move(trace)) {}
  [[nodiscard]] const StackTrace& trace() const { return trace_; }

 private:
  StackTrace trace_;
};

/// Execution budget guards: dynamic analysis over tens of thousands of apps
/// must never hang (paper: "stable operation with little manual
/// intervention").
struct VmLimits {
  std::uint64_t max_steps_per_entry = 2'000'000;
  int max_call_depth = 64;
};

/// Identity of the app this Vm hosts.
struct AppContext {
  manifest::Manifest manifest;

  [[nodiscard]] const std::string& package() const { return manifest.package; }
  [[nodiscard]] os::Principal principal() const {
    os::Principal p;
    p.pkg = manifest.package;
    p.has_write_external =
        manifest.has_permission(manifest::kWriteExternalStorage);
    return p;
  }
};

/// A notable framework-level behaviour (notification posted, SMS sent,
/// ptrace attached, ...) recorded for behaviour verification.
struct VmEvent {
  std::string kind;
  std::string detail;
};

/// Signature of a framework intrinsic.
class Vm;
using Intrinsic = std::function<Value(Vm&, const std::vector<Value>&)>;

class Vm {
 public:
  Vm(os::Device& device, AppContext app, VmLimits limits = {});
  ~Vm();
  Vm(const Vm&) = delete;
  Vm& operator=(const Vm&) = delete;

  /// Install the app's code: parses classes.dex from the (already installed)
  /// APK and builds the app PathClassLoader.
  support::Status load_app(const apk::ApkFile& apk);

  [[nodiscard]] Instrumentation& instrumentation() { return hooks_; }
  [[nodiscard]] os::Device& device() { return *device_; }
  [[nodiscard]] const AppContext& app() const { return app_; }

  // --- entry points -------------------------------------------------------

  /// Instantiate an app class (runs its <init> if defined) — used for
  /// activities, services, and the application container.
  ObjRef instantiate(std::string_view class_name);
  /// Invoke a (possibly inherited) method on an app object; extra args follow
  /// the receiver. Returns the method result. Throws VmException.
  Value call_method(const ObjRef& receiver, std::string_view method_name,
                    std::vector<Value> extra_args = {});
  /// Invoke a static app method by class+name.
  Value call_static(std::string_view class_name, std::string_view method_name,
                    std::vector<Value> args = {});
  /// True if the object's class (or a superclass) defines the method.
  bool has_method(const ObjRef& receiver, std::string_view method_name);

  // --- services for intrinsics (frameworks.cpp) ---------------------------

  /// Allocate a heap object with a fresh id.
  ObjRef make_object(std::string_view class_name, RuntimeClass* rt = nullptr);
  /// Current Java-style stack trace, innermost first.
  [[nodiscard]] StackTrace current_stack_trace() const;
  /// The defining loader of the innermost non-intrinsic frame (falls back to
  /// the app loader) — the loader used by Class.forName & friends.
  [[nodiscard]] LoaderState* current_loader() const;
  [[nodiscard]] LoaderState* app_loader() const { return app_loader_; }
  [[nodiscard]] LoaderState* boot_loader() const { return boot_loader_; }

  /// Create a runtime class loader (DexClassLoader / PathClassLoader ctor).
  /// Reads and parses every file in the ':'-separated dex_path; fires the
  /// on_dex_load hook; writes odex output under optimized_dir when given.
  /// Throws VmException on unreadable/unparsable files.
  LoaderState* create_runtime_loader(LoaderKind kind,
                                     const std::string& dex_path,
                                     const std::string& optimized_dir,
                                     LoaderState* parent);

  /// Resolve + load a class through a loader (parent-first delegation).
  /// Throws VmException(ClassNotFound) on failure.
  RuntimeClass* load_class(LoaderState* loader, std::string_view name);

  /// Load a native library from an absolute path. System libraries
  /// (/system/lib) are trusted no-ops. Fires on_native_load. Throws
  /// VmException (UnsatisfiedLinkError) when missing or unparsable.
  void load_native_library(const std::string& path);
  /// loadLibrary(name): resolve via app lib dir then /system/lib.
  void load_native_library_by_name(const std::string& name);

  /// Find an exported native symbol across loaded libraries.
  struct NativeSymbol {
    RuntimeClass* cls = nullptr;
    const dex::Method* method = nullptr;
  };
  [[nodiscard]] std::optional<NativeSymbol> find_native_symbol(
      std::string_view name);

  /// Invoke a resolved method (used by reflection & component dispatch).
  Value invoke(RuntimeClass* cls, const dex::Method& method,
               std::vector<Value> args);

  /// Register an intrinsic under "Class.method" (tests may override).
  void register_intrinsic(std::string_view cls, std::string_view method,
                          Intrinsic fn);
  /// Declare a framework class (boot loader will resolve it) and its super.
  void register_framework_class(std::string_view name,
                                std::string_view super = "");

  void record_event(std::string kind, std::string detail);
  [[nodiscard]] const std::vector<VmEvent>& events() const { return events_; }

  /// Read a VFS file as a refcounted snapshot view; throws
  /// VmException(FileNotFound) when absent. The returned Blob stays valid
  /// even if the file is later overwritten or deleted.
  support::Blob read_file_or_throw(const std::string& path);
  /// Write as the app principal. Full-storage errors surface as
  /// VmException(IOException); permission errors likewise.
  void write_file_as_app(const std::string& path, support::Bytes data);

  [[nodiscard]] VmException make_exception(const std::string& what) const {
    return VmException(what, current_stack_trace());
  }

  void emit_flow(const FlowNode& from, const FlowNode& to);
  [[nodiscard]] std::uint64_t steps_last_entry() const { return steps_; }

 private:
  struct Frame {
    RuntimeClass* cls = nullptr;  // nullptr for intrinsic frames
    std::string class_name;
    std::string method_name;
  };

  Value execute_body(RuntimeClass* cls, const dex::Method& method,
                     std::vector<Value> args);
  Value dispatch_invoke(RuntimeClass* caller_cls, const dex::DexFile& dexf,
                        const dex::Instruction& ins,
                        std::vector<Value>& regs);
  Value call_intrinsic(const std::string& cls, const std::string& method,
                       std::vector<Value> args);
  [[nodiscard]] const Intrinsic* find_intrinsic(
      const std::string& cls, const std::string& method) const;
  RuntimeClass* resolve_app_method(RuntimeClass* start,
                                   std::string_view method_name,
                                   const dex::Method** out);
  LoaderState* new_loader(LoaderType type, LoaderState* parent);

  os::Device* device_;
  AppContext app_;
  VmLimits limits_;
  Instrumentation hooks_;

  std::vector<std::unique_ptr<LoaderState>> loaders_;
  LoaderState* boot_loader_ = nullptr;
  LoaderState* app_loader_ = nullptr;

  std::map<std::string, Intrinsic> intrinsics_;       // "cls.method"
  std::map<std::string, std::string> framework_super_;  // class -> super

  struct LoadedNative {
    std::string path;
    nativebin::NativeLibrary lib;
    LoaderState* loader;
  };
  std::vector<std::unique_ptr<LoadedNative>> natives_;

  std::vector<Frame> frames_;
  std::vector<VmEvent> events_;
  std::uint64_t next_object_id_ = 1;
  std::uint64_t steps_ = 0;
};

}  // namespace dydroid::vm
