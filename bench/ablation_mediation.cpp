// Ablation 1 (DESIGN.md §5): the interception mutex.
//
// The paper's code interceptor makes File.delete()/renameTo() silently fail
// for queued binaries because ad SDKs delete their temporary dex right
// after loading it. This ablation runs the same ad apps WITH and WITHOUT
// the delete/rename block and compares how many loaded binaries remain
// recoverable from disk after the run — the naive "scan the filesystem
// afterwards" design loses every temporary payload.
#include <cstdio>

#include "appgen/generator.hpp"
#include "core/interceptor.hpp"
#include "monkey/monkey.hpp"

using namespace dydroid;

namespace {

struct Outcome {
  int loads = 0;
  int files_on_disk_after = 0;   // what post-hoc filesystem scanning sees
  int snapshots = 0;             // what live interception captured
};

Outcome run(const appgen::GeneratedApp& app, bool block_mutations,
            std::uint64_t seed) {
  Outcome out;
  os::Device device;
  appgen::apply_scenario(app.scenario, device);
  const auto apk = apk::ApkFile::deserialize(app.apk);
  (void)device.install(apk);
  vm::AppContext ctx;
  ctx.manifest = apk.read_manifest();
  vm::Vm vm(device, std::move(ctx));
  (void)vm.load_app(apk);
  core::CodeInterceptor interceptor(vm);
  if (!block_mutations) {
    // Ablated framework: delete/rename behave normally.
    vm.instrumentation().allow_file_delete = [](const std::string&) {
      return true;
    };
    vm.instrumentation().allow_file_rename = [](const std::string&,
                                                const std::string&) {
      return true;
    };
  }
  monkey::MonkeyConfig config;
  support::Rng rng(seed);
  (void)monkey::run_monkey(vm, config, rng);

  for (const auto& event : interceptor.events()) {
    if (event.system_binary) continue;
    out.loads += static_cast<int>(event.paths.size());
    for (const auto& path : event.paths) {
      if (device.vfs().exists(path)) ++out.files_on_disk_after;
    }
  }
  out.snapshots = static_cast<int>(interceptor.binaries().size());
  return out;
}

}  // namespace

int main() {
  std::printf(
      "Ablation: interception mutex (block delete/rename of queued "
      "binaries)\n\n");
  constexpr int kApps = 40;
  Outcome with{}, without{};
  support::Rng rng(77);
  for (int i = 0; i < kApps; ++i) {
    appgen::AppSpec spec;
    spec.package = "com.abl.ads" + std::to_string(i);
    spec.category = "Tools";
    spec.ad_sdk = true;  // loads a TEMPORARY dex, then deletes it
    const auto app = appgen::build_app(spec, rng);
    const auto a = run(app, true, 100 + static_cast<std::uint64_t>(i));
    const auto b = run(app, false, 100 + static_cast<std::uint64_t>(i));
    with.loads += a.loads;
    with.files_on_disk_after += a.files_on_disk_after;
    with.snapshots += a.snapshots;
    without.loads += b.loads;
    without.files_on_disk_after += b.files_on_disk_after;
    without.snapshots += b.snapshots;
  }

  std::printf("  %-34s %10s %14s\n", "", "with mutex", "without mutex");
  std::printf("  %-34s %10d %14d\n", "DCL loads observed", with.loads,
              without.loads);
  std::printf("  %-34s %10d %14d\n", "payload files on disk after run",
              with.files_on_disk_after, without.files_on_disk_after);
  std::printf("  %-34s %10d %14d\n", "binaries captured live",
              with.snapshots, without.snapshots);
  std::printf(
      "\n  Takeaway: live snapshotting captures everything either way, but a\n"
      "  post-hoc filesystem sweep (many prior systems) recovers %d/%d files\n"
      "  without the mutex — the temporary ad payloads are gone.\n",
      without.files_on_disk_after, without.loads);
  return 0;
}
