#include "common.hpp"

#include <cstdio>
#include <cstdlib>

#include "malware/families.hpp"
#include "support/fault.hpp"
#include "support/log.hpp"
#include "support/strings.hpp"
#include "support/trace.hpp"

namespace dydroid::bench {

namespace {

// Optional fault plan for the bench corpus, from the DYDROID_FAULTS env var
// (docs/FAULTS.md grammar). Absent or empty -> nullptr, and the bench output
// stays byte-identical to a faults-free build.
const support::FaultPlan* faults_from_env() {
  static const support::FaultPlan* plan = []() -> const support::FaultPlan* {
    const char* text = std::getenv("DYDROID_FAULTS");
    if (text == nullptr || text[0] == '\0') return nullptr;
    auto parsed = support::FaultPlan::parse(text);
    if (!parsed.ok()) {
      std::fprintf(stderr, "bench: ignoring bad DYDROID_FAULTS: %s\n",
                   parsed.error().c_str());
      return nullptr;
    }
    static const support::FaultPlan stored = std::move(parsed.value());
    return &stored;
  }();
  return plan;
}

// Optional write-ahead journal for the bench corpus, from the
// DYDROID_JOURNAL env var (docs/CHECKPOINT.md). Absent or empty -> "", and
// the bench run stays byte-identical to a journal-free run. Set
// DYDROID_RESUME=1 alongside it to replay completed outcomes from that
// journal before running.
std::string journal_from_env() {
  const char* path = std::getenv("DYDROID_JOURNAL");
  return (path == nullptr) ? std::string() : std::string(path);
}

bool resume_from_env() {
  const char* flag = std::getenv("DYDROID_RESUME");
  if (flag == nullptr || flag[0] == '\0') return false;
  // A boolean env hook that treated any non-"0" first byte as true made
  // DYDROID_RESUME=false resume. Accept the usual spellings; warn and
  // default to off on anything else — benches never throw on bad env.
  const std::string text = support::to_lower(flag);
  if (text == "1" || text == "true" || text == "yes" || text == "on") {
    return true;
  }
  if (text == "0" || text == "false" || text == "no" || text == "off") {
    return false;
  }
  std::fprintf(stderr,
               "bench: ignoring invalid DYDROID_RESUME value \"%s\" "
               "(want 1/true/yes/on or 0/false/no/off)\n",
               flag);
  return false;
}

// Optional Chrome trace for the bench corpus, from the DYDROID_TRACE env
// var (docs/OBSERVABILITY.md). Absent or empty -> "", tracing stays
// disarmed and the hot path keeps its single-branch fast path.
std::string trace_from_env() {
  const char* path = std::getenv("DYDROID_TRACE");
  return (path == nullptr) ? std::string() : std::string(path);
}

// Optional content-addressed result cache for the bench corpus, from the
// DYDROID_CACHE env var (docs/CACHE.md). Absent or empty -> "", and the
// bench run stays byte-identical to a cache-free run.
std::string cache_from_env() {
  const char* dir = std::getenv("DYDROID_CACHE");
  return (dir == nullptr) ? std::string() : std::string(dir);
}

// Optional process-isolation sandbox for the bench corpus, from the
// DYDROID_ISOLATE env var (docs/ISOLATION.md). Truthy spellings (and
// "fork") select fork-per-app, "pool" selects the persistent worker pool;
// clean runs produce byte-identical reports in every mode, so flipping
// this only moves the timing columns.
driver::IsolationMode isolation_from_env() {
  const char* flag = std::getenv("DYDROID_ISOLATE");
  if (flag == nullptr || flag[0] == '\0') return driver::IsolationMode::kOff;
  const std::string text = support::to_lower(flag);
  if (text == "1" || text == "true" || text == "yes" || text == "on" ||
      text == "fork") {
    return driver::IsolationMode::kForkPerApp;
  }
  if (text == "pool") return driver::IsolationMode::kPool;
  if (text == "0" || text == "false" || text == "no" || text == "off") {
    return driver::IsolationMode::kOff;
  }
  std::fprintf(stderr,
               "bench: ignoring invalid DYDROID_ISOLATE value \"%s\" "
               "(want 1/true/yes/on/fork, pool, or 0/false/no/off)\n",
               flag);
  return driver::IsolationMode::kOff;
}

// Optional corpus shard for the bench run, from the DYDROID_SHARD env var
// ("I/N", docs/SHARDING.md). Absent or empty -> {0, 0} (unsharded). Like
// every bench env hook, a malformed value warns and defaults — benches
// never throw on bad env.
struct ShardSpec {
  std::uint32_t index = 0;
  std::uint32_t count = 0;  // 0 = unsharded
};

ShardSpec shard_from_env() {
  const char* text = std::getenv("DYDROID_SHARD");
  if (text == nullptr || text[0] == '\0') return {};
  const std::string spec = text;
  const auto slash = spec.find('/');
  if (slash != std::string::npos) {
    const auto index = support::parse_u64(spec.substr(0, slash));
    const auto count = support::parse_u64(spec.substr(slash + 1));
    if (index.ok() && count.ok() && count.value() > 0 &&
        index.value() < count.value() && count.value() <= 0xFFFFFFFFull) {
      return {static_cast<std::uint32_t>(index.value()),
              static_cast<std::uint32_t>(count.value())};
    }
  }
  std::fprintf(stderr,
               "bench: ignoring invalid DYDROID_SHARD value \"%s\" "
               "(want I/N with 0 <= I < N)\n",
               text);
  return {};
}

}  // namespace

malware::DroidNative make_trained_detector(int samples_per_family) {
  malware::DroidNative detector(0.9);
  support::Rng rng(0xD401DA);
  for (int f = 0; f < malware::kNumFamilies; ++f) {
    const auto family = malware::family_at(f);
    for (const auto& sample :
         malware::generate_training_samples(family, samples_per_family, rng)) {
      detector.train(malware::family_name(family), sample);
    }
  }
  return detector;
}

core::AppReport rerun_app(const appgen::GeneratedApp& app,
                          const malware::DroidNative* detector,
                          const core::RuntimeConfig& runtime,
                          std::uint64_t seed) {
  core::PipelineOptions options;
  options.detector = detector;
  options.runtime = runtime;
  options.scenario_setup = [&app](os::Device& device) {
    appgen::apply_scenario(app.scenario, device);
  };
  core::DyDroid pipeline(std::move(options));
  return pipeline.analyze(app.apk, seed);
}

Measurement measure_corpus(const malware::DroidNative* detector,
                           core::RuntimeConfig runtime,
                           double scale_fallback) {
  support::set_log_level(support::LogLevel::Error);
  Measurement m;
  m.scale = appgen::scale_from_env(scale_fallback);
  appgen::CorpusConfig config;
  config.scale = m.scale;
  m.corpus = appgen::generate_corpus(config);

  // One shared immutable pipeline; per-app scenarios ride on the jobs.
  core::PipelineOptions options;
  options.detector = detector;
  options.runtime = runtime;
  options.faults = faults_from_env();
  const core::DyDroid pipeline(std::move(options));
  driver::RunnerConfig runner_config;
  runner_config.seed_base = kCorpusSeedBase;
  runner_config.journal_path = journal_from_env();
  runner_config.resume =
      !runner_config.journal_path.empty() && resume_from_env();
  runner_config.cache_dir = cache_from_env();
  runner_config.isolation_mode = isolation_from_env();
  const ShardSpec shard = shard_from_env();
  runner_config.shard_index = shard.index;
  runner_config.shard_count = shard.count;
  const std::string trace_path = trace_from_env();
  if (!trace_path.empty()) support::set_trace_enabled(true);
  const driver::CorpusRunner runner(pipeline, runner_config);
  auto result = runner.run(m.corpus);
  if (!trace_path.empty()) {
    support::set_trace_enabled(false);
    if (const auto status = support::trace_write_chrome_json(trace_path);
        !status.ok()) {
      std::fprintf(stderr, "bench: %s\n", status.error().c_str());
    } else {
      std::fprintf(stderr, "bench: wrote trace %s (%zu spans)\n",
                   trace_path.c_str(), support::trace_collect().size());
    }
  }

  m.apps.reserve(m.corpus.apps.size());
  for (std::size_t i = 0; i < result.outcomes.size(); ++i) {
    MeasuredApp measured;
    measured.app = &m.corpus.apps[i];
    measured.index = i;
    measured.report = std::move(result.outcomes[i].report);
    m.apps.push_back(std::move(measured));
  }
  m.stats = result.stats;
  m.wall_ms = result.wall_ms;
  m.threads = result.threads;
  return m;
}

void print_title(const std::string& table, const std::string& caption) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", table.c_str(), caption.c_str());
  std::printf("(measured on the synthetic corpus vs. the paper's population;\n");
  std::printf(" absolute counts scale with DYDROID_SCALE, shapes should match)\n");
  std::printf("================================================================\n");
}

std::string cell(double count, double pct) {
  return support::format("%8.0f (%5.2f%%)", count, pct);
}

void print_row(const std::string& label, double measured, double measured_pct,
               double paper, double paper_pct) {
  std::printf("  %-28s measured %s   paper %s\n", label.c_str(),
              cell(measured, measured_pct).c_str(),
              cell(paper, paper_pct).c_str());
}

void print_footer() { std::printf("\n"); }

}  // namespace dydroid::bench
