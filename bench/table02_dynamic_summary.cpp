// Reproduces paper Table II: dynamic-analysis summary over apps whose
// decompiled IR contains DEX-DCL code (DEX column) and native-loading code
// (Native column): failures (rewriting failure / no activity / crash),
// exercised, and actually-intercepted counts.
#include "common.hpp"

using namespace dydroid;
using namespace dydroid::bench;

namespace {

struct Column {
  double total = 0;
  double rewriting_failure = 0;
  double no_activity = 0;
  double crash = 0;
  double exercised = 0;
  double intercepted = 0;
  [[nodiscard]] double failure() const {
    return rewriting_failure + no_activity + crash;
  }
};

void print_column(const char* name, const Column& m, const Column& paper) {
  std::printf("[%s column] %.0f apps with %s-DCL code (paper %.0f)\n", name,
              m.total, name, paper.total);
  auto pct = [](double x, double total) {
    return total == 0 ? 0.0 : 100.0 * x / total;
  };
  print_row("Failure", m.failure(), pct(m.failure(), m.total), paper.failure(),
            pct(paper.failure(), paper.total));
  print_row("  Rewriting failure", m.rewriting_failure,
            pct(m.rewriting_failure, m.total), paper.rewriting_failure,
            pct(paper.rewriting_failure, paper.total));
  print_row("  No activity", m.no_activity, pct(m.no_activity, m.total),
            paper.no_activity, pct(paper.no_activity, paper.total));
  print_row("  Crash", m.crash, pct(m.crash, m.total), paper.crash,
            pct(paper.crash, paper.total));
  print_row("Exercised", m.exercised, pct(m.exercised, m.total),
            paper.exercised, pct(paper.exercised, paper.total));
  print_row("Intercepted", m.intercepted, pct(m.intercepted, m.total),
            paper.intercepted, pct(paper.intercepted, paper.total));
  std::printf("\n");
}

}  // namespace

int main() {
  const auto detector = make_trained_detector();
  const auto m = measure_corpus(&detector);
  print_title("Table II",
              "dynamic analysis summary (DEX & native columns)");

  Column dex;
  Column native;
  for (const auto& app : m.apps) {
    const auto& r = app.report;
    auto tally = [&](Column& col, core::CodeKind kind) {
      col.total += 1;
      switch (r.status) {
        case core::DynamicStatus::kRewritingFailure:
          col.rewriting_failure += 1;
          break;
        case core::DynamicStatus::kNoActivity:
          col.no_activity += 1;
          break;
        case core::DynamicStatus::kCrash:
          col.crash += 1;
          break;
        case core::DynamicStatus::kExercised:
          col.exercised += 1;
          if (r.intercepted(kind)) col.intercepted += 1;
          break;
        case core::DynamicStatus::kNotRun:
          break;
      }
    };
    if (r.static_dcl.dex_dcl) tally(dex, core::CodeKind::Dex);
    if (r.static_dcl.native_dcl) tally(native, core::CodeKind::Native);
  }

  const Column paper_dex{40849, 454, 8, 33, 40354, 16768};
  const Column paper_native{25287, 133, 13, 184, 24957, 13748};
  print_column("DEX", dex, paper_dex);
  print_column("Native", native, paper_native);
  print_footer();
  return 0;
}
