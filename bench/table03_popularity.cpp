// Reproduces paper Table III: application popularity (mean #downloads,
// #ratings, average rating) for apps with vs. without DEX DCL code and with
// vs. without native code. The paper's headline: DCL apps are MORE popular
// on every metric, native-code apps dramatically so.
#include "common.hpp"

using namespace dydroid;
using namespace dydroid::bench;

namespace {

struct Stats {
  double downloads = 0;
  double ratings = 0;
  double rating = 0;
  double n = 0;
  void add(const appgen::Popularity& p) {
    downloads += static_cast<double>(p.downloads);
    ratings += static_cast<double>(p.rating_count);
    rating += p.avg_rating;
    n += 1;
  }
  [[nodiscard]] double mean_downloads() const { return n ? downloads / n : 0; }
  [[nodiscard]] double mean_ratings() const { return n ? ratings / n : 0; }
  [[nodiscard]] double mean_rating() const { return n ? rating / n : 0; }
};

void row(const char* label, const Stats& s, double paper_dl, double paper_rt,
         double paper_avg) {
  std::printf(
      "  %-16s measured: %9.0f dl %7.0f ratings %4.2f avg   paper: %9.0f dl "
      "%7.0f ratings %4.2f avg\n",
      label, s.mean_downloads(), s.mean_ratings(), s.mean_rating(), paper_dl,
      paper_rt, paper_avg);
}

}  // namespace

int main() {
  const auto m = measure_corpus(nullptr);
  print_title("Table III", "DCL vs. application popularity");

  Stats dex, no_dex, native, no_native;
  for (const auto& app : m.apps) {
    const auto& spec = app.app->spec;
    if (app.report.decompile_failed) continue;
    if (app.report.static_dcl.dex_dcl) {
      dex.add(spec.popularity);
    } else {
      no_dex.add(spec.popularity);
    }
    if (app.report.static_dcl.native_dcl) {
      native.add(spec.popularity);
    } else {
      no_native.add(spec.popularity);
    }
  }

  row("DEX", dex, 60010, 2448, 3.91);
  row("Without DEX", no_dex, 52848, 2318, 3.77);
  row("Native", native, 288995, 8668, 3.82);
  row("Without Native", no_native, 75127, 1119, 3.79);

  std::printf("\nShape checks: DEX > without-DEX on all metrics: %s;"
              " native >> without-native downloads: %s\n",
              (dex.mean_downloads() > no_dex.mean_downloads() &&
               dex.mean_rating() > no_dex.mean_rating())
                  ? "yes"
                  : "NO",
              native.mean_downloads() > 2 * no_native.mean_downloads()
                  ? "yes"
                  : "NO");
  print_footer();
  return 0;
}
