// Reproduces paper Table IX: applications with code-injection-vulnerable
// DCL — loading DEX from world-writable external storage (on pre-4.4
// capable apps) and loading native code from another app's private internal
// storage. Integrity-verifying apps must not be flagged.
#include "common.hpp"

using namespace dydroid;
using namespace dydroid::bench;

int main() {
  const auto m = measure_corpus(nullptr);
  print_title("Table IX", "vulnerable applications detected");

  struct Row {
    int apps = 0;
    std::vector<std::string> packages;
  };
  Row dex_external, dex_other, native_external, native_other;
  int checked_not_flagged = 0;

  for (const auto& app : m.apps) {
    if (app.app->spec.vuln != appgen::VulnKind::None &&
        app.app->spec.vuln_integrity_check && app.report.vulns.empty()) {
      ++checked_not_flagged;
    }
    if (app.report.vulns.empty()) continue;
    bool counted_de = false, counted_do = false, counted_ne = false,
         counted_no = false;
    for (const auto& v : app.report.vulns) {
      const bool external = v.category == core::VulnCategory::ExternalStorage;
      if (v.kind == core::CodeKind::Dex) {
        auto& row = external ? dex_external : dex_other;
        auto& counted = external ? counted_de : counted_do;
        if (!counted) {
          counted = true;
          ++row.apps;
          row.packages.push_back(
              app.report.package + " (" +
              std::to_string(app.app->spec.popularity.downloads) + ")");
        }
      } else {
        auto& row = external ? native_external : native_other;
        auto& counted = external ? counted_ne : counted_no;
        if (!counted) {
          counted = true;
          ++row.apps;
          row.packages.push_back(
              app.report.package + " (" +
              std::to_string(app.app->spec.popularity.downloads) + ")");
        }
      }
    }
  }

  auto print = [](const char* kind, const char* category, const Row& row,
                  int paper) {
    std::printf("  [%s] %-42s measured %2d apps (paper %d)\n", kind, category,
                row.apps, paper);
    for (const auto& pkg : row.packages) {
      std::printf("      %s\n", pkg.c_str());
    }
  };
  print("DEX", "Internal storage of other applications", dex_other, 0);
  print("DEX", "External storage (< Android 4.4)", dex_external, 7);
  print("Native", "Internal storage of other applications", native_other, 7);
  print("Native", "External storage (< Android 4.4)", native_external, 0);

  std::printf(
      "\n  integrity-verifying apps correctly NOT flagged: %d\n"
      "  Shape: DEX risk sits on external storage, native risk on other"
      " apps' internal storage: %s\n",
      checked_not_flagged,
      (dex_external.apps > 0 && native_other.apps > 0 && dex_other.apps == 0 &&
       native_external.apps == 0)
          ? "yes"
          : "NO");
  print_footer();
  return 0;
}
