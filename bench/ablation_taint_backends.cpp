// Ablation 5: privacy backends — static (MiniFlowDroid, the paper's choice)
// vs. dynamic (TaintDroid/Uranine-style VM taint, implemented as an
// alternative backend).
//
// The paper chose to intercept binaries and run CHEAP STATIC analysis on
// them (§VI: dynamic reconstruction "introduce[s] heavy latency"). This
// bench quantifies the recall trade-off over payloads with (a) always
// executed flows, (b) conditionally executed flows (gated on connectivity),
// and (c) reflection-hidden flows.
#include <cstdio>

#include "core/dynamic_taint.hpp"
#include "dex/builder.hpp"
#include "monkey/monkey.hpp"
#include "privacy/flowdroid.hpp"

using namespace dydroid;

namespace {

enum class FlowShape { Direct, Gated, Reflective };

/// A payload with one IMEI->Log flow of the given shape.
dex::DexFile payload(FlowShape shape, int index) {
  dex::DexBuilder b;
  const auto cls_name = "sdk.tracker.Agent" + std::to_string(index);
  switch (shape) {
    case FlowShape::Direct: {
      auto m = b.cls(cls_name).method("run", 1);
      m.invoke_static("android.telephony.TelephonyManager", "getDeviceId");
      m.move_result(1);
      m.invoke_static("android.util.Log", "d", {1, 1});
      m.done();
      break;
    }
    case FlowShape::Gated: {
      // Leak only without connectivity (won't execute on the default
      // connected device).
      auto m = b.cls(cls_name).method("run", 1);
      m.invoke_static("android.net.ConnectivityManager", "isConnected");
      m.move_result(1);
      m.if_nez(1, "skip");
      m.invoke_static("android.telephony.TelephonyManager", "getDeviceId");
      m.move_result(2);
      m.invoke_static("android.util.Log", "d", {2, 2});
      m.label("skip");
      m.return_void();
      m.done();
      break;
    }
    case FlowShape::Reflective: {
      auto out = b.cls(cls_name + "Out").static_method("ship", 1);
      out.invoke_static("android.util.Log", "d", {0, 0});
      out.done();
      auto m = b.cls(cls_name).method("run", 1);
      m.invoke_static("android.telephony.TelephonyManager", "getDeviceId");
      m.move_result(1);
      m.const_str(2, cls_name + "Out");
      m.invoke_static("java.lang.Class", "forName", {2});
      m.move_result(3);
      m.const_str(4, "ship");
      m.invoke_virtual("java.lang.Class", "getMethod", {3, 4});
      m.move_result(5);
      m.const_int(6, 0);
      m.invoke_virtual("java.lang.reflect.Method", "invoke", {5, 6, 1});
      m.done();
      break;
    }
  }
  return b.build();
}

/// Dynamic: execute run() under taint tracking; did IMEI leak?
bool dynamic_finds(const dex::DexFile& dexfile, int index) {
  manifest::Manifest man;
  man.package = "com.abl.host";
  apk::ApkFile apk;
  apk.write_manifest(man);
  apk.write_classes_dex(dexfile);
  os::Device device;
  (void)device.install(apk);
  vm::AppContext app;
  app.manifest = man;
  vm::Vm vm(device, std::move(app));
  (void)vm.load_app(apk);
  core::DynamicTaintTracker tracker(vm);
  auto obj = vm.instantiate("sdk.tracker.Agent" + std::to_string(index));
  try {
    (void)vm.call_method(obj, "run");
  } catch (const vm::VmException&) {
  }
  return (tracker.leaked_mask() &
          privacy::mask_of(privacy::DataType::Imei)) != 0;
}

bool static_finds(const dex::DexFile& dexfile) {
  return (privacy::analyze_privacy(dexfile).leaked_mask() &
          privacy::mask_of(privacy::DataType::Imei)) != 0;
}

}  // namespace

int main() {
  std::printf("Ablation: privacy backends — static (paper) vs. dynamic\n\n");
  struct Row {
    const char* name;
    FlowShape shape;
    int static_hits = 0;
    int dynamic_hits = 0;
  };
  Row rows[] = {
      {"direct flow (always runs)", FlowShape::Direct},
      {"gated flow (dead on this device)", FlowShape::Gated},
      {"reflective flow", FlowShape::Reflective},
  };
  constexpr int kPerShape = 10;
  for (auto& row : rows) {
    for (int i = 0; i < kPerShape; ++i) {
      const auto dexfile = payload(row.shape, i);
      if (static_finds(dexfile)) ++row.static_hits;
      if (dynamic_finds(dexfile, i)) ++row.dynamic_hits;
    }
  }
  std::printf("  %-36s %10s %10s   (of %d)\n", "flow shape", "static",
              "dynamic", kPerShape);
  for (const auto& row : rows) {
    std::printf("  %-36s %10d %10d\n", row.name, row.static_hits,
                row.dynamic_hits);
  }
  std::printf(
      "\n  Takeaway: the backends are complementary. Static analysis (the\n"
      "  paper's choice for intercepted binaries) covers unexecuted code but\n"
      "  is blind through reflection; dynamic taint is exact and pierces\n"
      "  reflection but only sees what the fuzzer drives. Interception +\n"
      "  static analysis additionally avoids per-event runtime overhead\n"
      "  (paper §VI).\n");
  return 0;
}
