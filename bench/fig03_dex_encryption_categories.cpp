// Reproduces paper Figure 3: the distribution of DEX-encryption (packed)
// apps across Play-store categories. The paper's finding: Entertainment
// (smart-TV remotes), Tools (antivirus) and Shopping (payment) dominate.
#include <algorithm>
#include <map>

#include "common.hpp"

using namespace dydroid;
using namespace dydroid::bench;

int main() {
  const auto m = measure_corpus(nullptr);
  print_title("Figure 3", "#apps with DEX encryption vs. application category");

  std::map<std::string, int> histogram;
  int total = 0;
  for (const auto& app : m.apps) {
    if (!app.report.obfuscation.dex_encryption) continue;
    ++histogram[app.app->spec.category];
    ++total;
  }

  std::vector<std::pair<std::string, int>> rows(histogram.begin(),
                                                histogram.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return a.second > b.second;
  });

  for (const auto& [category, count] : rows) {
    std::printf("  %-18s %3d  %s\n", category.c_str(), count,
                std::string(static_cast<std::size_t>(count), '#').c_str());
  }
  std::printf("\n  measured %d packed apps (paper: 140)\n", total);

  const bool top3 =
      rows.size() >= 3 &&
      ((rows[0].first == "Entertainment" || rows[0].first == "Tools" ||
        rows[0].first == "Shopping") &&
       (rows[1].first == "Entertainment" || rows[1].first == "Tools" ||
        rows[1].first == "Shopping"));
  std::printf("  Entertainment/Tools/Shopping dominate: %s (paper: yes)\n",
              top3 ? "yes" : "NO");
  print_footer();
  return 0;
}
