// Ablation 3 (DESIGN.md §5): object-identity flow tracking (Table I) vs.
// path-string matching for download provenance.
//
// A naive tracker records "URL fetched -> file X written" by matching the
// path used at download time. Apps that rename or copy the downloaded file
// before loading it (common: download to a .tmp, then rename) break the
// path match; the Table-I flow graph follows File->File edges and survives.
#include <cstdio>

#include "core/interceptor.hpp"
#include "dex/builder.hpp"
#include "monkey/monkey.hpp"

using namespace dydroid;

namespace {

/// App that downloads to a temp path, RENAMES it, then loads the new path.
apk::ApkFile renaming_downloader(const std::string& pkg,
                                 const std::string& url) {
  manifest::Manifest man;
  man.package = pkg;
  man.add_permission(manifest::kInternet);
  man.add_permission(manifest::kWriteExternalStorage);
  man.components.push_back(manifest::Component{
      manifest::ComponentKind::Activity, pkg + ".Main", true});

  const auto tmp = "/data/data/" + pkg + "/cache/update.tmp";
  const auto final_path = "/data/data/" + pkg + "/files/update.dex";

  dex::DexBuilder b;
  auto m = b.cls(pkg + ".Main", "android.app.Activity").method("onCreate", 1);
  m.new_instance(1, "java.net.URL");
  m.const_str(2, url);
  m.invoke_virtual("java.net.URL", "<init>", {1, 2});
  m.invoke_virtual("java.net.URL", "openStream", {1});
  m.move_result(3);
  m.new_instance(4, "java.io.FileOutputStream");
  m.const_str(5, tmp);
  m.invoke_virtual("java.io.FileOutputStream", "<init>", {4, 5});
  m.label("copy");
  m.invoke_virtual("java.io.InputStream", "read", {3});
  m.move_result(6);
  m.if_eqz(6, "mv");
  m.invoke_virtual("java.io.OutputStream", "write", {4, 6});
  m.jump("copy");
  m.label("mv");
  m.new_instance(7, "java.io.File");
  m.invoke_virtual("java.io.File", "<init>", {7, 5});
  m.const_str(8, final_path);
  m.invoke_virtual("java.io.File", "renameTo", {7, 8});
  m.new_instance(9, "dalvik.system.DexClassLoader");
  m.const_str(10, "/data/data/" + pkg + "/files");
  m.invoke_virtual("dalvik.system.DexClassLoader", "<init>", {9, 8, 10});
  m.return_void();
  m.done();

  apk::ApkFile apk;
  apk.write_manifest(man);
  apk.write_classes_dex(b.build());
  apk.sign("dev");
  return apk;
}

support::Bytes payload() {
  dex::DexBuilder b;
  b.cls("upd.Payload").method("run", 1).return_void().done();
  return b.build().serialize();
}

}  // namespace

int main() {
  std::printf(
      "Ablation: Table-I flow tracking vs. naive path matching\n\n");
  constexpr int kApps = 20;
  int loads = 0;
  int flow_attributed = 0;
  int path_attributed = 0;
  for (int i = 0; i < kApps; ++i) {
    const auto pkg = "com.abl.flow" + std::to_string(i);
    const auto url = "http://cdn.example.com/" + pkg + ".dex";
    const auto apk = renaming_downloader(pkg, url);

    os::Device device;
    device.network().host(url, payload());
    (void)device.install(apk);
    vm::AppContext ctx;
    ctx.manifest = apk.read_manifest();
    vm::Vm vm(device, std::move(ctx));
    (void)vm.load_app(apk);
    core::CodeInterceptor interceptor(vm);

    // Naive tracker: remember which paths were written while a network
    // stream was open — approximated as "paths written directly by the
    // download loop" (the .tmp file).
    std::vector<std::string> naive_download_paths;
    const auto prev_written = vm.instrumentation().on_file_written;
    vm.instrumentation().on_file_written =
        [&naive_download_paths, prev_written](const std::string& path) {
          if (path.ends_with(".tmp")) naive_download_paths.push_back(path);
          if (prev_written) prev_written(path);
        };

    monkey::MonkeyConfig config;
    support::Rng rng(42 + static_cast<std::uint64_t>(i));
    (void)monkey::run_monkey(vm, config, rng);

    for (const auto& event : interceptor.events()) {
      for (const auto& path : event.paths) {
        ++loads;
        if (interceptor.tracker().origin_url(path).has_value()) {
          ++flow_attributed;
        }
        for (const auto& dl : naive_download_paths) {
          if (dl == path) ++path_attributed;
        }
      }
    }
  }

  std::printf("  loads of renamed downloads:        %d\n", loads);
  std::printf("  flow graph finds the origin URL:   %d (%.0f%%)\n",
              flow_attributed, loads ? 100.0 * flow_attributed / loads : 0);
  std::printf("  naive path matching finds it:      %d (%.0f%%)\n",
              path_attributed, loads ? 100.0 * path_attributed / loads : 0);
  std::printf(
      "\n  Takeaway: renames/copies break path matching; the object-identity\n"
      "  flow graph of Table I (with File->File edges) survives them.\n");
  return 0;
}
