// Reproduces paper Table I: the download tracker's flow rules. Runs the
// corpus's downloading apps and prints a census of observed flow-edge kinds
// (source URL, sink File, and the intermediate InputStream/Buffer/
// OutputStream edges), demonstrating that every rule in the table is
// exercised by real instrumented traffic.
#include <map>

#include "appgen/corpus.hpp"
#include "core/interceptor.hpp"
#include "monkey/monkey.hpp"
#include "support/log.hpp"

using namespace dydroid;

int main() {
  support::set_log_level(support::LogLevel::Error);
  std::printf(
      "\n================================================================\n"
      "Table I — rules of the download tracker (edge census)\n"
      "================================================================\n");

  std::map<std::pair<vm::FlowNodeKind, vm::FlowNodeKind>, std::size_t> census;
  std::size_t url_sources = 0;
  std::size_t file_sinks_with_origin = 0;

  // Apps that exercise the full chain: remote fetchers plus local
  // asset-copy loaders (File -> InputStream -> ... -> File).
  support::Rng rng(5);
  for (int i = 0; i < 40; ++i) {
    appgen::AppSpec spec;
    spec.package = "com.t1.app" + std::to_string(i);
    spec.category = "Tools";
    spec.baidu_remote_sdk = (i % 2 == 0);
    spec.ad_sdk = (i % 2 == 1);
    const auto app = appgen::build_app(spec, rng);

    os::Device device;
    appgen::apply_scenario(app.scenario, device);
    const auto apk = apk::ApkFile::deserialize(app.apk);
    (void)device.install(apk);
    vm::AppContext ctx;
    ctx.manifest = apk.read_manifest();
    vm::Vm vm(device, std::move(ctx));
    (void)vm.load_app(apk);
    core::CodeInterceptor interceptor(vm);
    const auto prev_flow = vm.instrumentation().on_flow;
    vm.instrumentation().on_flow = [&](const vm::FlowNode& from,
                                       const vm::FlowNode& to) {
      ++census[{from.kind, to.kind}];
      if (prev_flow) prev_flow(from, to);
    };
    const auto prev_url = vm.instrumentation().on_url_created;
    vm.instrumentation().on_url_created = [&](const vm::FlowNode& node) {
      ++url_sources;
      if (prev_url) prev_url(node);
    };
    monkey::MonkeyConfig config;
    support::Rng mrng(900 + static_cast<std::uint64_t>(i));
    (void)monkey::run_monkey(vm, config, mrng);
    for (const auto& event : interceptor.events()) {
      for (const auto& path : event.paths) {
        if (interceptor.tracker().origin_url(path)) ++file_sinks_with_origin;
      }
    }
  }

  std::printf("  source (URL objects created): %zu\n", url_sources);
  std::printf("  sink   (loaded files with URL origin): %zu\n\n",
              file_sinks_with_origin);
  std::printf("  %-16s -> %-16s %8s   (Table I rule)\n", "from", "to",
              "edges");
  const std::pair<vm::FlowNodeKind, vm::FlowNodeKind> rules[] = {
      {vm::FlowNodeKind::Url, vm::FlowNodeKind::InputStream},
      {vm::FlowNodeKind::InputStream, vm::FlowNodeKind::InputStream},
      {vm::FlowNodeKind::InputStream, vm::FlowNodeKind::Buffer},
      {vm::FlowNodeKind::Buffer, vm::FlowNodeKind::OutputStream},
      {vm::FlowNodeKind::OutputStream, vm::FlowNodeKind::File},
      {vm::FlowNodeKind::File, vm::FlowNodeKind::File},
      {vm::FlowNodeKind::File, vm::FlowNodeKind::InputStream},
  };
  bool all_exercised = true;
  for (const auto& rule : rules) {
    const auto it = census.find(rule);
    const auto count = it == census.end() ? 0 : it->second;
    // File->File (rename/copy) is exercised by the flow-tracking ablation
    // rather than these apps; report but don't require it here.
    const bool required = !(rule.first == vm::FlowNodeKind::File &&
                            rule.second == vm::FlowNodeKind::File) &&
                          !(rule.first == vm::FlowNodeKind::InputStream &&
                            rule.second == vm::FlowNodeKind::InputStream);
    if (required && count == 0) all_exercised = false;
    std::printf("  %-16s -> %-16s %8zu\n",
                std::string(vm::flow_node_kind_name(rule.first)).c_str(),
                std::string(vm::flow_node_kind_name(rule.second)).c_str(),
                count);
  }
  std::printf("\n  all core rules exercised by live traffic: %s\n\n",
              all_exercised ? "yes" : "NO");
  return 0;
}
