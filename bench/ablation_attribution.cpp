// Ablation 2 (DESIGN.md §5): call-site attribution rule.
//
// DyDroid attributes a DCL event to the FIRST non-framework frame of the
// stack trace (Fig. 2). The naive alternative — attribute to the OUTERMOST
// app frame (the component that handled the event) — misattributes every
// SDK-initiated load to the app developer. This ablation measures the
// misattribution rate over SDK-driven apps.
#include <cstdio>

#include "appgen/generator.hpp"
#include "core/interceptor.hpp"
#include "monkey/monkey.hpp"
#include "support/strings.hpp"

using namespace dydroid;

namespace {

/// Naive rule: bottom-most (outermost) non-framework frame.
std::string outermost_app_frame(const vm::StackTrace& trace) {
  for (auto it = trace.rbegin(); it != trace.rend(); ++it) {
    if (!vm::is_framework_class(it->class_name)) return it->class_name;
  }
  return "";
}

}  // namespace

int main() {
  std::printf("Ablation: stack-trace attribution rule (Fig. 2)\n\n");
  int events = 0;
  int agree = 0;
  int naive_says_own_actually_third = 0;
  support::Rng rng(7);
  for (int i = 0; i < 60; ++i) {
    appgen::AppSpec spec;
    spec.package = "com.abl.attr" + std::to_string(i);
    spec.category = "Tools";
    spec.ad_sdk = (i % 3 != 2);
    spec.analytics_sdk = (i % 3 == 2);
    spec.own_dex_dcl = (i % 5 == 0);
    const auto app = appgen::build_app(spec, rng);

    os::Device device;
    appgen::apply_scenario(app.scenario, device);
    const auto apk = apk::ApkFile::deserialize(app.apk);
    (void)device.install(apk);
    vm::AppContext ctx;
    ctx.manifest = apk.read_manifest();
    vm::Vm vm(device, std::move(ctx));
    (void)vm.load_app(apk);
    core::CodeInterceptor interceptor(vm);
    monkey::MonkeyConfig config;
    support::Rng mrng(1000 + static_cast<std::uint64_t>(i));
    (void)monkey::run_monkey(vm, config, mrng);

    for (const auto& event : interceptor.events()) {
      if (event.system_binary) continue;
      ++events;
      const auto naive = outermost_app_frame(event.trace);
      const auto naive_entity =
          core::classify_entity(naive, spec.package);
      if (naive_entity == event.entity) {
        ++agree;
      } else if (naive_entity == core::Entity::Own &&
                 event.entity == core::Entity::ThirdParty) {
        ++naive_says_own_actually_third;
      }
    }
  }

  std::printf("  DCL events observed:                    %d\n", events);
  std::printf("  rules agree:                            %d (%.1f%%)\n",
              agree, events ? 100.0 * agree / events : 0);
  std::printf("  naive rule misattributes SDK loads to\n");
  std::printf("  the developer:                          %d (%.1f%%)\n",
              naive_says_own_actually_third,
              events ? 100.0 * naive_says_own_actually_third / events : 0);
  std::printf(
      "\n  Takeaway: SDK loads are triggered from app lifecycle callbacks,\n"
      "  so the outermost-frame rule blames the developer for nearly every\n"
      "  third-party load; the innermost-non-framework rule (the paper's)\n"
      "  attributes them correctly.\n");
  return 0;
}
