// Shared bench harness: generates the paper-calibrated corpus, runs the
// full DyDroid pipeline over it through the parallel CorpusRunner, and
// exposes the measured reports (in corpus order) to the per-table printers.
// Scale via DYDROID_SCALE (default 0.05 = ~2,937 apps); worker count via
// DYDROID_JOBS (default: hardware concurrency); Chrome trace of the run
// via DYDROID_TRACE=out.json (docs/OBSERVABILITY.md); fork-per-app
// sandboxing via DYDROID_ISOLATE=1 (docs/ISOLATION.md).
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "appgen/corpus.hpp"
#include "core/pipeline.hpp"
#include "driver/corpus_runner.hpp"
#include "malware/droidnative.hpp"

namespace dydroid::bench {

/// Seed base for the measurement corpus; app N runs with
/// driver::seed_for_app(kCorpusSeedBase, N) regardless of thread count or
/// iteration order.
inline constexpr std::uint64_t kCorpusSeedBase = driver::kDefaultSeedBase;

struct MeasuredApp {
  const appgen::GeneratedApp* app = nullptr;
  std::size_t index = 0;  // position in corpus.apps (drives the seed)
  core::AppReport report;
};

struct Measurement {
  appgen::Corpus corpus;
  std::vector<MeasuredApp> apps;  // same order as corpus.apps
  double scale = 0.05;
  driver::AggregateStats stats;   // reduced across workers
  double wall_ms = 0.0;           // corpus wall time
  std::size_t threads = 1;        // workers used
};

/// Train MiniDroidNative the way the paper does: samples from 19 families
/// (scaled-down stand-in for the 1,240-app training set).
malware::DroidNative make_trained_detector(int samples_per_family = 4);

/// Generate the corpus and run the pipeline over every app (in parallel;
/// results are deterministic and in corpus order).
Measurement measure_corpus(const malware::DroidNative* detector,
                           core::RuntimeConfig runtime = {},
                           double scale_fallback = 0.05);

/// Re-run a single generated app under a runtime configuration. Pass the
/// app's index-derived seed (driver::seed_for_app) so the rerun matches
/// the corpus run app-for-app.
core::AppReport rerun_app(const appgen::GeneratedApp& app,
                          const malware::DroidNative* detector,
                          const core::RuntimeConfig& runtime,
                          std::uint64_t seed);

// ---- printing helpers -------------------------------------------------------

void print_title(const std::string& table, const std::string& caption);
void print_row(const std::string& label, double measured, double measured_pct,
               double paper, double paper_pct);
void print_footer();

/// "123 (45.6%)" cell format.
std::string cell(double count, double pct);

}  // namespace dydroid::bench
