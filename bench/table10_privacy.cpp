// Reproduces paper Table X: privacy tracking inside dynamically loaded DEX
// code — 18 data types in 5 categories, per-type app counts and the share
// whose leaks are exclusively invoked by third-party (SDK-namespace) code.
#include <array>

#include "common.hpp"
#include "support/strings.hpp"

using namespace dydroid;
using namespace dydroid::bench;

namespace {

struct PaperRow {
  privacy::DataType type;
  double apps;
  double excl_third;
};
constexpr std::array<PaperRow, 18> kPaper = {{
    {privacy::DataType::Location, 254, 251},
    {privacy::DataType::Imei, 581, 576},
    {privacy::DataType::Imsi, 27, 25},
    {privacy::DataType::Iccid, 8, 6},
    {privacy::DataType::PhoneNumber, 12, 10},
    {privacy::DataType::Account, 23, 23},
    {privacy::DataType::InstalledApplications, 32, 28},
    {privacy::DataType::InstalledPackages, 235, 231},
    {privacy::DataType::Contact, 1, 1},
    {privacy::DataType::Calendar, 76, 73},
    {privacy::DataType::CallLog, 32, 32},
    {privacy::DataType::Browser, 1, 1},
    {privacy::DataType::Audio, 5, 5},
    {privacy::DataType::Image, 74, 72},
    {privacy::DataType::Video, 31, 31},
    {privacy::DataType::Settings, 16482, 16441},
    {privacy::DataType::Mms, 1, 1},
    {privacy::DataType::Sms, 1, 1},
}};

}  // namespace

int main() {
  const auto m = measure_corpus(nullptr);
  print_title("Table X", "privacy tracking in dynamically loaded code");

  // Per type: apps leaking it, apps whose leaks of that type are all from
  // third-party-namespace classes.
  std::array<int, privacy::kNumDataTypes> apps{};
  std::array<int, privacy::kNumDataTypes> excl_third{};
  int population = 0;
  for (const auto& app : m.apps) {
    if (!app.report.intercepted(core::CodeKind::Dex)) continue;
    ++population;
    std::array<bool, privacy::kNumDataTypes> leaked{};
    std::array<bool, privacy::kNumDataTypes> own_leak{};
    for (const auto& binary : app.report.binaries) {
      for (const auto& leak : binary.privacy.leaks) {
        const auto t = static_cast<int>(leak.type);
        leaked[static_cast<std::size_t>(t)] = true;
        const auto pkg = support::package_of(leak.sink_class);
        if (support::package_has_prefix(pkg, app.report.package)) {
          own_leak[static_cast<std::size_t>(t)] = true;
        }
      }
    }
    for (int t = 0; t < privacy::kNumDataTypes; ++t) {
      if (leaked[static_cast<std::size_t>(t)]) {
        ++apps[static_cast<std::size_t>(t)];
        if (!own_leak[static_cast<std::size_t>(t)]) {
          ++excl_third[static_cast<std::size_t>(t)];
        }
      }
    }
  }

  std::printf("  based on %d apps with intercepted DEX (paper: 16,768)\n\n",
              population);
  std::printf("  %-24s %-5s %18s %18s\n", "Data type", "Categ",
              "measured (excl-3rd)", "paper (excl-3rd)");
  for (const auto& row : kPaper) {
    const auto t = static_cast<std::size_t>(row.type);
    const double mp = apps[t] == 0 ? 0 : 100.0 * excl_third[t] / apps[t];
    const double pp = row.apps == 0 ? 0 : 100.0 * row.excl_third / row.apps;
    std::printf("  %-24s %-5s %7d (%5.1f%%)   %8.0f (%5.1f%%)\n",
                std::string(privacy::data_type_name(row.type)).c_str(),
                std::string(privacy::category_name(
                                privacy::category_of(row.type)))
                    .c_str(),
                apps[t], mp, row.apps, pp);
  }

  const auto settings = static_cast<std::size_t>(privacy::DataType::Settings);
  const auto imei = static_cast<std::size_t>(privacy::DataType::Imei);
  std::printf(
      "\n  Shape: Settings dominates (ad libraries), IMEI is the top identity"
      " leak,\n  and leaks are overwhelmingly third-party-exclusive: %s\n",
      (apps[settings] > apps[imei] &&
       (apps[settings] == 0 ||
        excl_third[settings] > 0.9 * apps[settings]))
          ? "yes"
          : "NO");
  print_footer();
  return 0;
}
