// Reproduces paper Table VI: adoption of obfuscation techniques across the
// whole corpus — lexical (ProGuard-style renaming), reflection, native code
// (dynamically confirmed), DEX encryption (packers) and anti-decompilation.
#include "common.hpp"

using namespace dydroid;
using namespace dydroid::bench;

int main() {
  const auto m = measure_corpus(nullptr);
  print_title("Table VI", "#apps using obfuscation techniques");

  const double total = static_cast<double>(m.apps.size());
  double lexical = 0, reflection = 0, native = 0, packed = 0, anti = 0;
  for (const auto& app : m.apps) {
    const auto& o = app.report.obfuscation;
    if (o.lexical) lexical += 1;
    if (o.reflection) reflection += 1;
    // Paper confirms native usage with the dynamic analysis output.
    if (app.report.intercepted(core::CodeKind::Native)) native += 1;
    if (o.dex_encryption) packed += 1;
    if (o.anti_decompilation) anti += 1;
  }

  const double paper_total = 58739;
  auto pct = [](double x, double t) { return t == 0 ? 0 : 100.0 * x / t; };
  std::printf("[%0.f apps measured; paper %0.f]\n", total, paper_total);
  print_row("Lexical", lexical, pct(lexical, total), 52836,
            pct(52836, paper_total));
  print_row("Reflection", reflection, pct(reflection, total), 30664,
            pct(30664, paper_total));
  print_row("Native", native, pct(native, total), 13748,
            pct(13748, paper_total));
  print_row("DEX encryption", packed, pct(packed, total), 140,
            pct(140, paper_total));
  print_row("Anti-decompilation", anti, pct(anti, total), 54,
            pct(54, paper_total));

  std::printf(
      "\nShape check (ordering lexical > reflection > native >> packers > "
      "anti-decompilation): %s\n",
      (lexical > reflection && reflection > native && native > packed &&
       packed >= anti)
          ? "yes"
          : "NO");
  print_footer();
  return 0;
}
