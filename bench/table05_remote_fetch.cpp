// Reproduces paper Table V: apps executing binaries downloaded from remote
// servers at runtime (a Google Play content-policy violation). In the
// paper all 27 such loads were initiated by Baidu advertisement libraries
// fetching JAR/APK files from http://mobads.baidu.com/ads/pa/.
#include "common.hpp"

using namespace dydroid;
using namespace dydroid::bench;

int main() {
  const auto m = measure_corpus(nullptr);
  print_title("Table V", "apps loading remotely fetched code (policy violation)");

  std::size_t violators = 0;
  std::size_t baidu = 0;
  std::printf("  %-40s %-12s %s\n", "Package", "Entity", "Origin URL");
  for (const auto& app : m.apps) {
    const auto remote = app.report.remote_loaded();
    if (remote.empty()) continue;
    ++violators;
    for (const auto* binary : remote) {
      if (binary->origin_url->find("mobads.baidu.com") != std::string::npos) {
        ++baidu;
      }
      std::printf("  %-40s %-12s %s\n", app.report.package.c_str(),
                  std::string(core::entity_name(binary->binary.entity)).c_str(),
                  binary->origin_url->c_str());
    }
  }
  std::printf(
      "\n  measured: %zu violating apps (paper: 27 of 16,768; scaled ~%.1f)\n",
      violators, 27.0 * m.scale);
  std::printf("  all remote loads via Baidu ad SDK: %s (paper: yes)\n",
              (violators > 0 && baidu > 0) ? "yes" : "NO");
  print_footer();
  return 0;
}
