// Reproduces paper Table IV: the responsible entity launching DCL —
// third-party SDK/library vs. the app's own code — identified from the
// stack-trace call site (Fig. 2), for DEX and native loads.
#include "common.hpp"

using namespace dydroid;
using namespace dydroid::bench;

int main() {
  const auto m = measure_corpus(nullptr);
  print_title("Table IV", "responsible entity of DCL (stack-trace call site)");

  struct Row {
    double total = 0, third = 0, own = 0, both = 0;
  };
  Row dex, native;
  for (const auto& app : m.apps) {
    auto tally = [&](Row& row, core::CodeKind kind) {
      if (!app.report.intercepted(kind)) return;
      const auto use = app.report.entity_use(kind);
      row.total += 1;
      if (use.third_party) row.third += 1;
      if (use.own) row.own += 1;
      if (use.own && use.third_party) row.both += 1;
    };
    tally(dex, core::CodeKind::Dex);
    tally(native, core::CodeKind::Native);
  }

  auto print = [](const char* name, const Row& r, double pt, double po,
                  double pb, double ptotal) {
    std::printf("[%s] %.0f apps intercepted (paper %.0f)\n", name, r.total,
                ptotal);
    auto pct = [](double x, double t) { return t == 0 ? 0 : 100.0 * x / t; };
    print_row("3rd-party", r.third, pct(r.third, r.total), pt, pct(pt, ptotal));
    print_row("Own", r.own, pct(r.own, r.total), po, pct(po, ptotal));
    print_row("3rd-party & Own", r.both, pct(r.both, r.total), pb,
              pct(pb, ptotal));
    std::printf("\n");
  };
  print("DEX", dex, 16755, 50, 37, 16768);
  print("Native", native, 11834, 2280, 366, 13748);

  std::printf("Shape check: >85%% of DCL initiated by 3rd parties: %s\n",
              (dex.total > 0 && dex.third / dex.total > 0.85 &&
               native.total > 0 && native.third / native.total > 0.85)
                  ? "yes"
                  : "NO");
  print_footer();
  return 0;
}
