// Reproduces the paper's Discussion (§V-C) coverage claim: "advertisement
// libraries initialize most of the DCL events and the DCL events are
// triggered when the app is launched. ... Thus using monkey is enough."
//
// Runs the corpus's DCL apps with (a) launch only (0 fuzz events) and
// (b) the full fuzz budget, and compares interception coverage.
#include "common.hpp"
#include "support/log.hpp"

using namespace dydroid;
using namespace dydroid::bench;

namespace {

int count_intercepted(const Measurement& m) {
  int n = 0;
  for (const auto& app : m.apps) {
    if (app.report.intercepted(core::CodeKind::Dex) ||
        app.report.intercepted(core::CodeKind::Native)) {
      ++n;
    }
  }
  return n;
}

Measurement measure_with_events(int num_events, double scale) {
  support::set_log_level(support::LogLevel::Error);
  Measurement m;
  m.scale = scale;
  appgen::CorpusConfig config;
  config.scale = scale;
  m.corpus = appgen::generate_corpus(config);

  core::PipelineOptions options;
  options.engine.monkey.num_events = num_events;
  const core::DyDroid pipeline(std::move(options));
  driver::RunnerConfig runner_config;
  runner_config.seed_base = 0xC0FFEE;
  const driver::CorpusRunner runner(pipeline, runner_config);
  auto result = runner.run(m.corpus);

  m.apps.reserve(result.outcomes.size());
  for (std::size_t i = 0; i < result.outcomes.size(); ++i) {
    MeasuredApp measured;
    measured.app = &m.corpus.apps[i];
    measured.index = i;
    measured.report = std::move(result.outcomes[i].report);
    m.apps.push_back(std::move(measured));
  }
  m.stats = result.stats;
  m.wall_ms = result.wall_ms;
  m.threads = result.threads;
  return m;
}

}  // namespace

int main() {
  const double scale = appgen::scale_from_env(0.02);
  print_title("Discussion §V-C", "fuzzing coverage: launch-only vs. full fuzz");

  const auto launch_only = measure_with_events(0, scale);
  const auto full = measure_with_events(40, scale);

  const int launch_hits = count_intercepted(launch_only);
  const int full_hits = count_intercepted(full);

  std::printf("  apps with intercepted DCL, launch only (0 events): %d\n",
              launch_hits);
  std::printf("  apps with intercepted DCL, full fuzz (40 events):  %d\n",
              full_hits);
  std::printf("  launch-time coverage: %.1f%% of full-fuzz coverage\n",
              full_hits == 0 ? 0 : 100.0 * launch_hits / full_hits);
  std::printf(
      "\n  Paper's observation (via MAdScope): DCL is dominated by ad SDKs\n"
      "  firing at app launch, so Monkey-style fuzzing suffices for this\n"
      "  measurement — %s here.\n",
      (full_hits > 0 && launch_hits >= 0.9 * full_hits) ? "confirmed"
                                                        : "NOT confirmed");
  print_footer();
  return 0;
}
