// Reproduces paper Table VIII: re-executing the malware-loading apps under
// four runtime-environment configurations and counting how many malicious
// files are still loaded — system time before release, airplane mode with
// WiFi re-enabled, airplane mode with WiFi off, and location service off.
#include "common.hpp"

using namespace dydroid;
using namespace dydroid::bench;

namespace {

/// Count malware files intercepted for one app under a config.
int malware_files(const appgen::GeneratedApp& app,
                  const malware::DroidNative* detector,
                  const core::RuntimeConfig& runtime, std::uint64_t seed) {
  const auto report = rerun_app(app, detector, runtime, seed);
  return static_cast<int>(report.malware_loaded().size());
}

}  // namespace

int main() {
  const auto detector = make_trained_detector();
  const auto m = measure_corpus(&detector);
  print_title("Table VIII",
              "malicious code loaded under runtime configurations");

  // Flagged apps = those whose default run loaded detected malware. Keep
  // the corpus index so reruns use the app's own index-derived seed.
  std::vector<const MeasuredApp*> flagged;
  int baseline_files = 0;
  for (const auto& app : m.apps) {
    const auto hits = app.report.malware_loaded();
    if (hits.empty()) continue;
    flagged.push_back(&app);
    baseline_files += static_cast<int>(hits.size());
  }

  struct Config {
    const char* name;
    core::RuntimeConfig runtime;
    double paper_loaded;
  };
  core::RuntimeConfig before_release;
  before_release.time_ms = appgen::kReleaseTimeMs - 30LL * 86'400'000;
  core::RuntimeConfig airplane_wifi;
  airplane_wifi.airplane_mode = true;
  airplane_wifi.wifi_enabled = true;
  core::RuntimeConfig airplane_only;
  airplane_only.airplane_mode = true;
  airplane_only.wifi_enabled = false;
  core::RuntimeConfig location_off;
  location_off.location_enabled = false;

  const Config configs[] = {
      {"System time (before release)", before_release, 72},
      {"Airplane mode/WiFi ON", airplane_wifi, 56},
      {"Airplane mode/WiFi OFF", airplane_only, 53},
      {"Location OFF", location_off, 70},
  };

  std::printf("  baseline: %d malicious files over %zu apps"
              " (paper: 91 files / 87 apps)\n\n",
              baseline_files, flagged.size());
  std::printf("  %-32s %18s %18s\n", "Configuration", "measured loaded",
              "paper loaded");
  for (const auto& config : configs) {
    int loaded = 0;
    for (const auto* app : flagged) {
      // Seed derives from the app's corpus index, not from the iteration
      // order of the flagged subset, so an app's rerun is reproducible no
      // matter which other apps happened to be flagged.
      loaded += malware_files(*app->app, &detector, config.runtime,
                              driver::seed_for_app(0xAB1E, app->index));
    }
    const double mpct =
        baseline_files == 0 ? 0 : 100.0 * loaded / baseline_files;
    std::printf("  %-32s %8d (%5.1f%%) %10.0f (%5.1f%%)\n", config.name,
                loaded, mpct, config.paper_loaded,
                100.0 * config.paper_loaded / 91.0);
  }
  std::printf(
      "\n  Shape: every configuration hides some loads; airplane+WiFi-off"
      " hides the most.\n");
  print_footer();
  return 0;
}
