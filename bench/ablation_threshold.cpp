// Ablation 4 (DESIGN.md §5): the ≥90 % ACFG-match threshold.
//
// Sweeps DroidNative's similarity threshold against (a) true family
// variants under increasing mutation strength (junk blocks) and (b) benign
// payloads, reporting detection and false-positive rates — showing why the
// paper's 0.9 sits at the knee.
#include <cstdio>

#include "malware/droidnative.hpp"
#include "malware/families.hpp"

using namespace dydroid;
using namespace dydroid::malware;

int main() {
  std::printf("Ablation: ACFG similarity threshold sweep\n\n");

  DroidNative detector(0.9);
  support::Rng rng(123);
  for (int f = 0; f < kNumFamilies; ++f) {
    for (const auto& s : generate_training_samples(family_at(f), 4, rng)) {
      detector.train(family_name(family_at(f)), s);
    }
  }

  // Score pools.
  constexpr int kVariantsPerFamily = 8;
  constexpr int kBenign = 60;
  std::vector<double> true_scores_light;   // string/padding mutation only
  std::vector<double> true_scores_heavy;   // + junk blocks
  std::vector<double> benign_scores;

  for (int f = 0; f < 3; ++f) {  // the three DCL families of Table VII
    for (int v = 0; v < kVariantsPerFamily; ++v) {
      PayloadOptions light;
      support::Rng r1(1000 + static_cast<std::uint64_t>(f * 100 + v));
      const auto scores_l =
          detector.scores(generate_payload(family_at(f), light, r1));
      if (!scores_l.empty()) true_scores_light.push_back(scores_l[0].score);

      PayloadOptions heavy;
      heavy.junk_blocks = 30;
      support::Rng r2(2000 + static_cast<std::uint64_t>(f * 100 + v));
      const auto scores_h =
          detector.scores(generate_payload(family_at(f), heavy, r2));
      if (!scores_h.empty()) true_scores_heavy.push_back(scores_h[0].score);
    }
  }
  for (int i = 0; i < kBenign; ++i) {
    support::Rng r(3000 + static_cast<std::uint64_t>(i));
    const auto scores = detector.scores(generate_benign_payload(r));
    benign_scores.push_back(scores.empty() ? 0.0 : scores[0].score);
  }

  auto rate_at = [](const std::vector<double>& scores, double threshold) {
    if (scores.empty()) return 0.0;
    int hits = 0;
    for (const auto s : scores) {
      if (s >= threshold) ++hits;
    }
    return 100.0 * hits / static_cast<double>(scores.size());
  };

  std::printf("  %-10s %18s %18s %14s\n", "threshold", "detect (variants)",
              "detect (mutated)", "benign FP");
  for (const double threshold :
       {0.50, 0.60, 0.70, 0.80, 0.90, 0.95, 0.99}) {
    std::printf("  %8.2f %16.1f%% %17.1f%% %12.1f%%\n", threshold,
                rate_at(true_scores_light, threshold),
                rate_at(true_scores_heavy, threshold),
                rate_at(benign_scores, threshold));
  }
  std::printf(
      "\n  Takeaway: address-level variants sit at ~1.0 similarity (the\n"
      "  paper: samples \"only differ in the memory addresses\"), benign\n"
      "  code far below; 0.9 keeps detection ~100%% at zero FP while\n"
      "  tolerating moderate structural mutation.\n");
  return 0;
}
