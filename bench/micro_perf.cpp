// Micro-benchmarks (google-benchmark) for the per-app costs that dominate
// the 46K-app measurement: interpretation, container (de)serialization,
// decompilation, ACFG lifting + matching, taint analysis, corpus build and
// the end-to-end pipeline — plus a corpus-throughput comparison (serial vs
// parallel CorpusRunner) that emits BENCH_corpus.json after the benchmark
// run. Scale the corpus cases with DYDROID_SCALE (JSON emitter default
// 0.05) and the worker pool with DYDROID_JOBS.
#include <benchmark/benchmark.h>

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "analysis/decompiler.hpp"
#include "appgen/corpus.hpp"
#include "appgen/generator.hpp"
#include "core/pipeline.hpp"
#include "core/report_json.hpp"
#include "dex/builder.hpp"
#include "dex/disassembler.hpp"
#include "driver/corpus_runner.hpp"
#include "driver/shard_merge.hpp"
#include "malware/droidnative.hpp"
#include "malware/families.hpp"
#include "obfuscation/packer.hpp"
#include "privacy/flowdroid.hpp"
#include "support/log.hpp"
#include "support/stopwatch.hpp"
#include "support/strings.hpp"
#include "support/trace.hpp"

using namespace dydroid;

namespace {

appgen::GeneratedApp make_ad_app() {
  appgen::AppSpec spec;
  spec.package = "com.bench.app";
  spec.category = "Tools";
  spec.ad_sdk = true;
  support::Rng rng(1);
  return appgen::build_app(spec, rng);
}

void BM_InterpreterArithLoop(benchmark::State& state) {
  dex::DexBuilder b;
  auto m = b.cls("bench.Calc", "android.app.Activity").static_method("sum", 1);
  m.const_int(1, 0);
  m.const_int(2, 1);
  m.label("top");
  m.if_eqz(0, "end");
  m.add(1, 1, 0);
  m.sub(0, 0, 2);
  m.jump("top");
  m.label("end");
  m.ret(1);
  m.done();
  manifest::Manifest man;
  man.package = "bench";
  apk::ApkFile apk;
  apk.write_manifest(man);
  apk.write_classes_dex(b.build());
  os::Device device;
  vm::AppContext app;
  app.manifest = man;
  vm::Vm vm(device, std::move(app));
  (void)vm.load_app(apk);
  const std::int64_t n = state.range(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        vm.call_static("bench.Calc", "sum", {vm::Value(n)}));
  }
  state.SetItemsProcessed(state.iterations() * n * 4);  // ~4 ops per round
}
BENCHMARK(BM_InterpreterArithLoop)->Arg(1000)->Arg(10000);

void BM_ApkSerializeRoundTrip(benchmark::State& state) {
  const auto app = make_ad_app();
  for (auto _ : state) {
    const auto apk = apk::ApkFile::deserialize(app.apk);
    benchmark::DoNotOptimize(apk.serialize());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(app.apk.size()));
}
BENCHMARK(BM_ApkSerializeRoundTrip);

// Parse-once container handling (docs/FORMATS.md, "Buffer ownership &
// zero-copy views"). Arg 0 replays the legacy per-stage churn — a lenient
// parse for decompilation, a strict re-parse for rewrite validation plus a
// repack serialize, and a third parse for the install. Arg 1 is the current
// pipeline shape: one ApkImage::parse whose entries are zero-copy slices,
// a CRC-index walk standing in for strict validation, and a Blob view for
// the install. The delta is the redundant container work removed per app.
void BM_ParseOnce(benchmark::State& state) {
  const auto app = make_ad_app();
  const bool legacy = state.range(0) == 0;
  for (auto _ : state) {
    if (legacy) {
      const auto decompiled = apk::ApkFile::deserialize(app.apk);
      const auto validated =
          apk::ApkFile::deserialize(app.apk, apk::ParseMode::kStrict);
      benchmark::DoNotOptimize(validated.serialize());  // repack copy
      benchmark::DoNotOptimize(apk::ApkFile::deserialize(app.apk));
      benchmark::DoNotOptimize(decompiled.entry_names());
    } else {
      const auto image = apk::ApkImage::parse(app.apk);
      benchmark::DoNotOptimize(image.file().first_crc_mismatch());
      benchmark::DoNotOptimize(image.bytes().span());
      benchmark::DoNotOptimize(image.file().entry_names());
    }
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(app.apk.size()));
  state.SetLabel(legacy ? "reparse-per-stage" : "parse-once");
}
BENCHMARK(BM_ParseOnce)->Arg(0)->Arg(1);

void BM_Decompile(benchmark::State& state) {
  const auto app = make_ad_app();
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::decompile(app.apk));
  }
}
BENCHMARK(BM_Decompile);

void BM_PackApp(benchmark::State& state) {
  const auto app = make_ad_app();
  const auto apk = apk::ApkFile::deserialize(app.apk);
  for (auto _ : state) {
    benchmark::DoNotOptimize(obfuscation::pack(apk, {}));
  }
}
BENCHMARK(BM_PackApp);

void BM_AcfgLift(benchmark::State& state) {
  support::Rng rng(2);
  const auto payload = malware::generate_payload(
      malware::Family::SwissCodeMonkeys, {}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(malware::DroidNative::lift(payload));
  }
}
BENCHMARK(BM_AcfgLift);

void BM_AcfgSimilarity(benchmark::State& state) {
  support::Rng rng(3);
  const auto a = *malware::DroidNative::lift(malware::generate_payload(
      malware::Family::SwissCodeMonkeys, {}, rng));
  const auto b = *malware::DroidNative::lift(malware::generate_payload(
      malware::Family::SwissCodeMonkeys, {}, rng));
  for (auto _ : state) {
    benchmark::DoNotOptimize(malware::acfg_similarity(a, b));
  }
}
BENCHMARK(BM_AcfgSimilarity);

void BM_DetectorScan(benchmark::State& state) {
  malware::DroidNative detector(0.9);
  support::Rng rng(4);
  for (int f = 0; f < malware::kNumFamilies; ++f) {
    for (const auto& s :
         malware::generate_training_samples(malware::family_at(f),
                                            static_cast<int>(state.range(0)),
                                            rng)) {
      detector.train(malware::family_name(malware::family_at(f)), s);
    }
  }
  const auto payload =
      malware::generate_payload(malware::Family::ChathookPtrace, {}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(detector.scan(payload));
  }
}
BENCHMARK(BM_DetectorScan)->Arg(2)->Arg(8);

void BM_PrivacyAnalysis(benchmark::State& state) {
  // The heaviest realistic payload: every data type leaked.
  privacy::TaintMask mask = 0;
  for (int i = 0; i < privacy::kNumDataTypes; ++i) {
    mask |= privacy::mask_of(static_cast<privacy::DataType>(i));
  }
  appgen::AppSpec spec;
  spec.package = "com.bench.leaky";
  spec.category = "Tools";
  spec.analytics_sdk = true;
  spec.sdk_leaks = mask;
  support::Rng rng(5);
  const auto app = appgen::build_app(spec, rng);
  const auto apk = apk::ApkFile::deserialize(app.apk);
  const auto payload = *apk.get("assets/tracker.bin");
  const auto dexfile = dex::DexFile::deserialize(payload);
  for (auto _ : state) {
    benchmark::DoNotOptimize(privacy::analyze_privacy(dexfile));
  }
}
BENCHMARK(BM_PrivacyAnalysis);

void BM_BuildApp(benchmark::State& state) {
  appgen::AppSpec spec;
  spec.package = "com.bench.gen";
  spec.category = "Tools";
  spec.ad_sdk = true;
  spec.analytics_sdk = true;
  spec.own_native_dcl = true;
  support::Rng rng(6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(appgen::build_app(spec, rng));
  }
}
BENCHMARK(BM_BuildApp);

void BM_FullPipelinePerApp(benchmark::State& state) {
  const auto app = make_ad_app();
  std::uint64_t seed = 0;
  for (auto _ : state) {
    core::PipelineOptions options;
    options.scenario_setup = [&app](os::Device& device) {
      appgen::apply_scenario(app.scenario, device);
    };
    core::DyDroid pipeline(std::move(options));
    benchmark::DoNotOptimize(pipeline.analyze(app.apk, seed++));
  }
}
BENCHMARK(BM_FullPipelinePerApp);

void BM_MonkeySession(benchmark::State& state) {
  const auto app = make_ad_app();
  const auto apk = apk::ApkFile::deserialize(app.apk);
  const auto man = apk.read_manifest();
  os::Device device;
  (void)device.install(apk);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    support::Rng rng(seed++);
    benchmark::DoNotOptimize(core::run_app(device, apk, man, rng));
  }
}
BENCHMARK(BM_MonkeySession);

// ---- Corpus throughput (apps/sec): serial vs. parallel driver -------------

void BM_CorpusThroughput(benchmark::State& state) {
  support::set_log_level(support::LogLevel::Error);
  appgen::CorpusConfig config;
  config.scale = 0.02;
  const auto corpus = appgen::generate_corpus(config);
  const core::DyDroid pipeline{core::PipelineOptions{}};
  driver::RunnerConfig runner_config;
  runner_config.jobs = static_cast<std::size_t>(state.range(0));
  const driver::CorpusRunner runner(pipeline, runner_config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(runner.run(corpus));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(corpus.apps.size()));
  state.SetLabel("apps/s; jobs=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_CorpusThroughput)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

// Write-ahead journal overhead (docs/CHECKPOINT.md): the same corpus run
// with journaling off (Arg 0) and on (Arg 1). The acceptance bar is <5%
// added wall time with the fsync knob off — one buffered write(2) per app.
void BM_JournalOverhead(benchmark::State& state) {
  support::set_log_level(support::LogLevel::Error);
  appgen::CorpusConfig config;
  config.scale = 0.02;
  const auto corpus = appgen::generate_corpus(config);
  const core::DyDroid pipeline{core::PipelineOptions{}};
  const bool journaled = state.range(0) != 0;
  const std::string journal_path =
      "bench_journal_overhead_" + std::to_string(::getpid()) + ".jrnl";
  driver::RunnerConfig runner_config;
  runner_config.jobs = 1;
  if (journaled) runner_config.journal_path = journal_path;
  const driver::CorpusRunner runner(pipeline, runner_config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(runner.run(corpus));
  }
  if (journaled) std::remove(journal_path.c_str());
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(corpus.apps.size()));
  state.SetLabel(journaled ? "journal=on" : "journal=off");
}
BENCHMARK(BM_JournalOverhead)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

// Content-addressed result cache (docs/CACHE.md): the same corpus run cold
// (empty store — every app analyzed, digested and inserted) and warm (the
// store already holds every (apk, config, seed) key — every app is served
// from disk). The acceptance bar is a >=2x warm speedup: a lookup costs one
// SHA-256 of the package plus a decode, against a full pipeline run.
void BM_CacheWarm(benchmark::State& state) {
  support::set_log_level(support::LogLevel::Error);
  appgen::CorpusConfig config;
  config.scale = 0.02;
  const auto corpus = appgen::generate_corpus(config);
  const core::DyDroid pipeline{core::PipelineOptions{}};
  const bool warm = state.range(0) != 0;
  const std::string cache_dir = "bench_cache_warm_" + std::to_string(::getpid());
  driver::RunnerConfig runner_config;
  runner_config.jobs = 1;
  runner_config.cache_dir = cache_dir;
  const driver::CorpusRunner runner(pipeline, runner_config);
  if (warm) benchmark::DoNotOptimize(runner.run(corpus));  // populate once
  for (auto _ : state) {
    if (!warm) {
      state.PauseTiming();
      std::filesystem::remove_all(cache_dir);
      state.ResumeTiming();
    }
    benchmark::DoNotOptimize(runner.run(corpus));
  }
  std::filesystem::remove_all(cache_dir);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(corpus.apps.size()));
  state.SetLabel(warm ? "cache=warm" : "cache=cold");
}
BENCHMARK(BM_CacheWarm)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

// Process isolation (docs/ISOLATION.md): the same corpus run in-thread
// (Arg 0), with every app forked into a fresh sandboxed child (Arg 1), and
// on the persistent worker pool (Arg 2). The fork-mode delta is pure
// containment cost — fork, pipe shipment of the encoded outcome, and reap —
// while the pool amortizes the fork across the worker's lifetime and pays
// only the per-app RPC. Clean children produce byte-identical reports in
// every mode.
void BM_IsolationOverhead(benchmark::State& state) {
  support::set_log_level(support::LogLevel::Error);
  appgen::CorpusConfig config;
  config.scale = 0.02;
  const auto corpus = appgen::generate_corpus(config);
  const core::DyDroid pipeline{core::PipelineOptions{}};
  driver::RunnerConfig runner_config;
  runner_config.jobs = 1;
  runner_config.isolation_mode = static_cast<driver::IsolationMode>(
      static_cast<std::uint8_t>(state.range(0)));
  const driver::CorpusRunner runner(pipeline, runner_config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(runner.run(corpus));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(corpus.apps.size()));
  switch (runner_config.isolation_mode) {
    case driver::IsolationMode::kOff: state.SetLabel("isolate=off"); break;
    case driver::IsolationMode::kForkPerApp:
      state.SetLabel("isolate=fork");
      break;
    case driver::IsolationMode::kPool: state.SetLabel("isolate=pool"); break;
  }
}
BENCHMARK(BM_IsolationOverhead)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Unit(benchmark::kMillisecond);

// Sharded corpus merge (docs/SHARDING.md): Arg shard journals are produced
// once outside the timed region (N shard runs, each journaling its residue
// class); the timed region is merge_shard_journals folding them into one
// sealed journal. The merge is pure journal read/validate/write — its cost
// must stay negligible next to the analysis the shards already did.
void BM_ShardMerge(benchmark::State& state) {
  support::set_log_level(support::LogLevel::Error);
  appgen::CorpusConfig config;
  config.scale = 0.02;
  const auto corpus = appgen::generate_corpus(config);
  const core::DyDroid pipeline{core::PipelineOptions{}};
  const auto shards = static_cast<std::uint32_t>(state.range(0));
  std::vector<std::string> shard_paths;
  for (std::uint32_t i = 0; i < shards; ++i) {
    const std::string path = "bench_shard_" + std::to_string(::getpid()) +
                             "_" + std::to_string(i) + ".jrnl";
    driver::RunnerConfig shard_config;
    shard_config.jobs = 1;
    shard_config.journal_path = path;
    shard_config.shard_index = i;
    shard_config.shard_count = shards;
    benchmark::DoNotOptimize(
        driver::CorpusRunner(pipeline, shard_config).run(corpus));
    shard_paths.push_back(path);
  }
  const std::string merged_path =
      "bench_shard_merged_" + std::to_string(::getpid()) + ".jrnl";
  for (auto _ : state) {
    auto merged = driver::merge_shard_journals(merged_path, shard_paths);
    if (!merged.ok()) state.SkipWithError(merged.error().c_str());
    benchmark::DoNotOptimize(merged);
  }
  for (const auto& path : shard_paths) std::remove(path.c_str());
  std::remove(merged_path.c_str());
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(corpus.apps.size()));
  state.SetLabel("shards=" + std::to_string(shards));
}
BENCHMARK(BM_ShardMerge)->Arg(2)->Arg(8)->Unit(benchmark::kMillisecond);

/// Serial-vs-parallel corpus comparison, written to BENCH_corpus.json:
/// wall time and apps/sec with 1 worker and with DYDROID_JOBS/hardware
/// workers, plus a byte-identity check over every per-app JSON report.
void emit_corpus_bench_json() {
  support::set_log_level(support::LogLevel::Error);
  const double scale = appgen::scale_from_env(0.05);
  appgen::CorpusConfig config;
  config.scale = scale;
  const auto corpus = appgen::generate_corpus(config);
  const core::DyDroid pipeline{core::PipelineOptions{}};

  driver::RunnerConfig serial_config;
  serial_config.jobs = 1;
  auto serial = driver::CorpusRunner(pipeline, serial_config).run(corpus);

  // Like every A/B pair below, the parallel run is best-of-3: a single
  // sample on a shared runner can lose to scheduler noise and report a
  // "slowdown" that no real campaign sees, and the outcomes are
  // deterministic either way.
  driver::RunnerConfig parallel_config;  // jobs = DYDROID_JOBS / hardware
  auto parallel = driver::CorpusRunner(pipeline, parallel_config).run(corpus);
  for (int rep = 1; rep < 3; ++rep) {
    auto parallel_rep =
        driver::CorpusRunner(pipeline, parallel_config).run(corpus);
    if (parallel_rep.wall_ms < parallel.wall_ms) {
      parallel = std::move(parallel_rep);
    }
  }

  // Same serial run with the write-ahead journal on (docs/CHECKPOINT.md):
  // the overhead budget is <5% wall time. A single A/B pair is hostage to
  // scheduler noise on shared 1-vCPU runners, so interleave three runs per
  // mode and compare the minima — the min is the run least disturbed by
  // the neighbours, and the outcomes are deterministic either way.
  const std::string journal_path =
      "BENCH_corpus_" + std::to_string(::getpid()) + ".jrnl";
  driver::RunnerConfig journal_config;
  journal_config.jobs = 1;
  journal_config.journal_path = journal_path;
  auto journaled = driver::CorpusRunner(pipeline, journal_config).run(corpus);
  std::remove(journal_path.c_str());
  for (int rep = 1; rep < 3; ++rep) {
    auto serial_rep = driver::CorpusRunner(pipeline, serial_config).run(corpus);
    if (serial_rep.wall_ms < serial.wall_ms) serial = std::move(serial_rep);
    auto journal_rep =
        driver::CorpusRunner(pipeline, journal_config).run(corpus);
    std::remove(journal_path.c_str());
    if (journal_rep.wall_ms < journaled.wall_ms) {
      journaled = std::move(journal_rep);
    }
  }
  const double journal_overhead_pct =
      serial.wall_ms > 0
          ? 100.0 * (journaled.wall_ms - serial.wall_ms) / serial.wall_ms
          : 0.0;

  // Process isolation (docs/ISOLATION.md): same corpus, every app in a
  // sandboxed child. Fork-per-app pays fork + pipe + reap per app; the
  // worker pool forks once per runner thread and pays only a framed RPC
  // per app. Both best-of-3 against the best serial run, same as the
  // journal A/B.
  driver::RunnerConfig isolate_config;
  isolate_config.jobs = 1;
  isolate_config.isolation_mode = driver::IsolationMode::kForkPerApp;
  auto isolated = driver::CorpusRunner(pipeline, isolate_config).run(corpus);
  for (int rep = 1; rep < 3; ++rep) {
    auto isolate_rep =
        driver::CorpusRunner(pipeline, isolate_config).run(corpus);
    if (isolate_rep.wall_ms < isolated.wall_ms) {
      isolated = std::move(isolate_rep);
    }
  }
  const double isolation_overhead_pct =
      serial.wall_ms > 0
          ? 100.0 * (isolated.wall_ms - serial.wall_ms) / serial.wall_ms
          : 0.0;
  bool isolation_identical =
      serial.outcomes.size() == isolated.outcomes.size();
  for (std::size_t i = 0; isolation_identical && i < serial.outcomes.size();
       ++i) {
    isolation_identical =
        core::report_to_json(serial.outcomes[i].report) ==
        core::report_to_json(isolated.outcomes[i].report);
  }

  driver::RunnerConfig pool_config;
  pool_config.jobs = 1;
  pool_config.isolation_mode = driver::IsolationMode::kPool;
  auto pooled = driver::CorpusRunner(pipeline, pool_config).run(corpus);
  for (int rep = 1; rep < 3; ++rep) {
    auto pool_rep = driver::CorpusRunner(pipeline, pool_config).run(corpus);
    if (pool_rep.wall_ms < pooled.wall_ms) pooled = std::move(pool_rep);
  }
  const double pool_overhead_pct =
      serial.wall_ms > 0
          ? 100.0 * (pooled.wall_ms - serial.wall_ms) / serial.wall_ms
          : 0.0;
  const double pool_speedup_vs_fork =
      pooled.wall_ms > 0 ? isolated.wall_ms / pooled.wall_ms : 0.0;
  bool pool_identical = serial.outcomes.size() == pooled.outcomes.size();
  for (std::size_t i = 0; pool_identical && i < serial.outcomes.size(); ++i) {
    pool_identical = core::report_to_json(serial.outcomes[i].report) ==
                     core::report_to_json(pooled.outcomes[i].report);
  }

  // Content-addressed result cache (docs/CACHE.md): a cold run populates
  // the store, a second identical run serves every app from it. The warm
  // speedup is the re-run payoff the cache exists for (acceptance: >=2x).
  const std::string cache_dir = "BENCH_cache_" + std::to_string(::getpid());
  std::filesystem::remove_all(cache_dir);
  driver::RunnerConfig cache_config;
  cache_config.jobs = 1;
  cache_config.cache_dir = cache_dir;
  const auto cold = driver::CorpusRunner(pipeline, cache_config).run(corpus);
  const auto warm = driver::CorpusRunner(pipeline, cache_config).run(corpus);
  std::filesystem::remove_all(cache_dir);
  const std::size_t warm_checked =
      warm.stats.cache_hits + warm.stats.cache_misses;
  const double cache_hit_rate =
      warm_checked > 0
          ? static_cast<double>(warm.stats.cache_hits) / warm_checked
          : 0.0;
  const double warm_speedup =
      warm.wall_ms > 0 ? cold.wall_ms / warm.wall_ms : 0.0;

  bool identical = serial.outcomes.size() == parallel.outcomes.size();
  for (std::size_t i = 0; identical && i < serial.outcomes.size(); ++i) {
    identical = core::report_to_json(serial.outcomes[i].report) ==
                core::report_to_json(parallel.outcomes[i].report);
  }

  // Sharded execution + deterministic merge (docs/SHARDING.md): three
  // shard runs cover the corpus, `merge` folds their journals into one,
  // and a --resume replay of the merged journal must reproduce the serial
  // reports byte-for-byte. Merge overhead is scored against the best
  // serial wall time — the merge is the only extra serial step a sharded
  // campaign pays.
  constexpr std::uint32_t kShards = 3;
  std::vector<std::string> shard_paths;
  double max_shard_wall_ms = 0.0;  // the sharded campaign's critical path
  for (std::uint32_t i = 0; i < kShards; ++i) {
    const std::string path =
        support::format("BENCH_shard_%d_%u.jrnl", ::getpid(), i);
    driver::RunnerConfig shard_config;
    shard_config.jobs = 1;
    shard_config.journal_path = path;
    shard_config.shard_index = i;
    shard_config.shard_count = kShards;
    const auto shard_run =
        driver::CorpusRunner(pipeline, shard_config).run(corpus);
    max_shard_wall_ms = std::max(max_shard_wall_ms, shard_run.wall_ms);
    shard_paths.push_back(path);
  }
  const std::string merged_path =
      support::format("BENCH_shard_merged_%d.jrnl", ::getpid());
  const support::Stopwatch merge_clock;
  const auto merged = driver::merge_shard_journals(merged_path, shard_paths);
  const double merge_ms = merge_clock.elapsed_ms();
  bool shard_identical = merged.ok();
  const std::size_t merged_records =
      merged.ok() ? merged.value().records_merged : 0;
  if (merged.ok()) {
    driver::RunnerConfig replay_config;
    replay_config.jobs = 1;
    replay_config.journal_path = merged_path;
    replay_config.resume = true;
    const auto replayed =
        driver::CorpusRunner(pipeline, replay_config).run(corpus);
    shard_identical = replayed.replayed == corpus.apps.size();
    for (std::size_t i = 0; shard_identical && i < serial.outcomes.size();
         ++i) {
      shard_identical = core::report_to_json(serial.outcomes[i].report) ==
                        core::report_to_json(replayed.outcomes[i].report);
    }
  } else {
    std::fprintf(stderr, "micro_perf: %s\n", merged.error().c_str());
  }
  for (const auto& path : shard_paths) std::remove(path.c_str());
  std::remove(merged_path.c_str());
  const double merge_overhead_pct =
      serial.wall_ms > 0 ? 100.0 * merge_ms / serial.wall_ms : 0.0;

  // Metrics-instrumented serial pass (docs/OBSERVABILITY.md): per-stage
  // latency quantiles for the `metrics` section, plus the instrumentation
  // overhead (budget: low single digits). Three *interleaved* plain /
  // metered pairs, minima compared — a lone instrumented sample on a
  // noisy runner once read as a 39% "regression", and comparing against
  // the program-start serial baseline still inflated the figure past 15%
  // (by this point the fork/cache/shard passes have reshaped the heap and
  // page cache), so the baseline is re-measured here, adjacent to the
  // metered reps. The quantiles come from the last metered pass (reset
  // each rep, so counts stay single-run).
  double plain_wall_ms = 0.0;
  double instrumented_wall_ms = 0.0;
  driver::CorpusResult instrumented;
  for (int rep = 0; rep < 3; ++rep) {
    const auto plain_rep =
        driver::CorpusRunner(pipeline, serial_config).run(corpus);
    plain_wall_ms = rep == 0 ? plain_rep.wall_ms
                             : std::min(plain_wall_ms, plain_rep.wall_ms);
    support::set_metrics_enabled(true);
    support::metrics_reset();
    auto instrumented_rep =
        driver::CorpusRunner(pipeline, serial_config).run(corpus);
    support::set_metrics_enabled(false);
    instrumented_wall_ms =
        rep == 0 ? instrumented_rep.wall_ms
                 : std::min(instrumented_wall_ms, instrumented_rep.wall_ms);
    instrumented = std::move(instrumented_rep);
  }
  const auto metrics = support::metrics_snapshot();
  const double metrics_overhead_pct =
      plain_wall_ms > 0
          ? 100.0 * (instrumented_wall_ms - plain_wall_ms) / plain_wall_ms
          : 0.0;
  std::string metrics_json;
  {
    constexpr std::string_view kPrefixes[] = {"stage.", "phase.", "runner.",
                                              "journal."};
    bool first = true;
    for (const auto& h : metrics.histograms) {
      bool match = false;
      for (const auto& prefix : kPrefixes) {
        if (h.name.starts_with(prefix)) {
          match = true;
          break;
        }
      }
      if (!match || h.observations == 0) continue;
      if (!first) metrics_json += ",";
      first = false;
      metrics_json += support::format(
          "\n    {\"name\": \"%s\", \"count\": %llu, \"p50_ms\": %.3f,"
          " \"p95_ms\": %.3f, \"max_ms\": %.3f, \"total_ms\": %.1f}",
          h.name.c_str(), static_cast<unsigned long long>(h.observations),
          h.quantile_us(0.50) / 1000.0, h.quantile_us(0.95) / 1000.0,
          static_cast<double>(h.max_us) / 1000.0,
          static_cast<double>(h.sum_us) / 1000.0);
    }
  }

  const auto apps = static_cast<double>(corpus.apps.size());
  // Parse-once accounting from the instrumented pass: container parses and
  // buffer-duplicating copies per analyzed app. The pre-refactor pipeline
  // re-deserialized each container ≥3× per attempt; the guard tests pin
  // parses_per_app at 1 on the happy path.
  const auto* parse_counter = metrics.counter("pipeline.parses");
  const auto* copy_counter = metrics.counter("pipeline.bytes_copied");
  const double parses_per_app =
      apps > 0 && parse_counter != nullptr
          ? static_cast<double>(parse_counter->value) / apps
          : 0.0;
  const double copied_per_app =
      apps > 0 && copy_counter != nullptr
          ? static_cast<double>(copy_counter->value) / apps
          : 0.0;
  const double serial_aps =
      serial.wall_ms > 0 ? 1000.0 * apps / serial.wall_ms : 0.0;
  const double parallel_aps =
      parallel.wall_ms > 0 ? 1000.0 * apps / parallel.wall_ms : 0.0;

  std::FILE* f = std::fopen("BENCH_corpus.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "micro_perf: cannot write BENCH_corpus.json\n");
    return;
  }
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"corpus_throughput\",\n"
               "  \"scale\": %.4f,\n"
               "  \"apps\": %zu,\n"
               "  \"hardware_concurrency\": %zu,\n"
               "  \"serial\": {\"jobs\": 1, \"wall_ms\": %.2f,"
               " \"apps_per_sec\": %.1f},\n"
               "  \"parallel\": {\"jobs\": %zu, \"wall_ms\": %.2f,"
               " \"apps_per_sec\": %.1f},\n"
               "  \"journaled\": {\"jobs\": 1, \"wall_ms\": %.2f,"
               " \"overhead_pct\": %.2f},\n"
               "  \"isolation\": {\"jobs\": 1,\n"
               "    \"fork_per_app\": {\"wall_ms\": %.2f,"
               " \"overhead_pct\": %.2f, \"reports_identical\": %s},\n"
               "    \"pool\": {\"wall_ms\": %.2f, \"overhead_pct\": %.2f,"
               " \"reports_identical\": %s, \"speedup_vs_fork\": %.2f}},\n"
               "  \"cache\": {\"cold_wall_ms\": %.2f, \"warm_wall_ms\": %.2f,"
               " \"hit_rate\": %.4f, \"warm_speedup\": %.2f,"
               " \"unique_binaries\": %zu, \"total_binaries\": %zu},\n"
               "  \"metrics\": {\"overhead_pct\": %.2f, \"stages\": [%s\n"
               "  ]},\n"
               "  \"parse_once\": {\"parses_per_app\": %.3f,"
               " \"bytes_copied_per_app\": %.0f},\n"
               "  \"sharding\": {\"shards\": %u, \"merge_ms\": %.2f,"
               " \"merge_overhead_pct\": %.2f, \"records\": %zu,"
               " \"max_shard_wall_ms\": %.2f, \"replayed_identical\": %s},\n"
               "  \"speedup\": %.3f,\n"
               "  \"reports_identical\": %s\n"
               "}\n",
               scale, corpus.apps.size(),
               static_cast<std::size_t>(std::thread::hardware_concurrency()),
               serial.wall_ms, serial_aps, parallel.threads, parallel.wall_ms,
               parallel_aps, journaled.wall_ms, journal_overhead_pct,
               isolated.wall_ms, isolation_overhead_pct,
               isolation_identical ? "true" : "false", pooled.wall_ms,
               pool_overhead_pct, pool_identical ? "true" : "false",
               pool_speedup_vs_fork,
               cold.wall_ms, warm.wall_ms, cache_hit_rate, warm_speedup,
               warm.dedup.unique, warm.dedup.total,
               metrics_overhead_pct, metrics_json.c_str(), parses_per_app,
               copied_per_app, kShards, merge_ms, merge_overhead_pct,
               merged_records, max_shard_wall_ms,
               shard_identical ? "true" : "false",
               parallel.wall_ms > 0 ? serial.wall_ms / parallel.wall_ms : 0.0,
               identical ? "true" : "false");
  std::fclose(f);
  std::printf(
      "\nBENCH_corpus.json: %zu apps, serial %.1f ms (%.0f apps/s), "
      "parallel[%zu] %.1f ms (%.0f apps/s), speedup %.2fx, identical=%s, "
      "journal overhead %+.1f%%, isolation fork %+.1f%% / pool %+.1f%% "
      "(%.1fx faster than fork), cache warm %.2fx (hit rate %.0f%%), "
      "shard merge[%u] %.1f ms (identical=%s)\n",
      corpus.apps.size(), serial.wall_ms, serial_aps, parallel.threads,
      parallel.wall_ms, parallel_aps,
      parallel.wall_ms > 0 ? serial.wall_ms / parallel.wall_ms : 0.0,
      identical ? "true" : "false", journal_overhead_pct,
      isolation_overhead_pct, pool_overhead_pct, pool_speedup_vs_fork,
      warm_speedup, 100.0 * cache_hit_rate, kShards,
      merge_ms, shard_identical ? "true" : "false");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  emit_corpus_bench_json();
  return 0;
}
