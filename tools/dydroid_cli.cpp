// dydroid — command-line front end.
//
//   dydroid gen <out.sapk> [--pkg P] [--ad] [--baidu] [--analytics]
//               [--own-dex] [--native] [--malware FAMILY] [--vuln KIND]
//               [--pack] [--lexical] [--seed N]
//       Generate a SimApk from behaviour flags (writes side-car files
//       <out>.hosted.<i> for any remote payloads the app needs).
//
//   dydroid analyze <app.sapk> [--seed N] [--host URL FILE]...
//               [--journal PATH | --resume PATH] [--cache DIR]
//       Run the full pipeline on one app; print the JSON report. With a
//       journal the finished outcome is appended to the write-ahead log;
//       with --resume a journaled outcome is replayed instead of re-run.
//       With --cache the outcome is served from / inserted into the
//       content-addressed result cache (docs/CACHE.md).
//
//   dydroid disasm <app.sapk>
//       Decompile and print the smali-like listing (fails on
//       anti-decompilation, like the real tooling).
//
//   dydroid pack <in.sapk> <out.sapk> [--trap]
//       Apply the DEX-encryption packer.
//
//   dydroid survey [--scale S] [--seed N] [--faults PLAN] [--budget MS]
//               [--retry] [--journal PATH | --resume PATH] [--fsync]
//               [--cache DIR] [--cache-entries N] [--cache-bytes N]
//               [--trace OUT.json] [--metrics] [--top K]
//       Generate a corpus and print the Section-V style summary. With a
//       journal, every finished app is appended to a crash-safe
//       write-ahead log (docs/CHECKPOINT.md); SIGINT/SIGTERM triggers a
//       graceful stop (in-flight apps finish, the journal is sealed) and
//       a killed or interrupted run resumes with --resume PATH,
//       re-running only the missing apps. --cache DIR arms the
//       content-addressed result cache + binary dedup store
//       (docs/CACHE.md): identical (bytes, config, seed) work is
//       replayed instead of re-analyzed. --trace writes a Chrome
//       trace_event JSON (chrome://tracing / Perfetto) with one span per
//       (app, stage, attempt); --metrics appends the per-stage latency
//       table and the top-K slowest apps (docs/OBSERVABILITY.md).
//       --isolate forks one sandboxed child per analysis attempt
//       (docs/ISOLATION.md): crashes, OOMs and hangs are classified,
//       quarantined data points instead of driver outages;
//       --isolate=pool serves apps from one persistent forked worker per
//       thread instead (same classification, fork cost amortized) with
//       --recycle-apps K retiring workers after K apps; --mem-limit
//       caps child address space and implies --isolate.
//
//   dydroid merge <out.journal> <shard.journal>...
//       Fold the journals of N `survey --shard I/N` runs into one sealed
//       journal whose --resume replay is byte-identical to an unsharded
//       run (docs/SHARDING.md). Loud failures on overlapping/missing
//       shards, mismatched config fingerprints or mixed codec versions.
//
//   dydroid faultcheck [--scale S] [--jobs 1,2,8] [--fraction F]
//               [--no-corruption]
//       Run the golden-corpus differential fault matrix (docs/FAULTS.md):
//       every injection site armed in turn must move each app only into
//       its predicted Table II bucket, byte-identical across worker
//       counts. Exit status 1 if any prediction fails.
#include <algorithm>
#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "analysis/decompiler.hpp"
#include "appgen/corpus.hpp"
#include "core/pipeline.hpp"
#include "core/report_json.hpp"
#include "core/unpacker.hpp"
#include "driver/corpus_runner.hpp"
#include "driver/fault_matrix.hpp"
#include "driver/shard_merge.hpp"
#include "malware/families.hpp"
#include "obfuscation/packer.hpp"
#include "support/blob.hpp"
#include "support/fault.hpp"
#include "support/log.hpp"
#include "support/strings.hpp"
#include "support/trace.hpp"

using namespace dydroid;

namespace {

support::Bytes read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  return support::Bytes(std::istreambuf_iterator<char>(in),
                        std::istreambuf_iterator<char>());
}

void write_file(const std::string& path, std::span<const std::uint8_t> data) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot write " + path);
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
}

struct Args {
  std::vector<std::string> positional;
  std::map<std::string, std::string> options;  // --k v (or "" for flags)
  std::vector<std::pair<std::string, std::string>> hosts;  // --host URL FILE

  bool flag(const std::string& name) const {
    return options.find(name) != options.end();
  }
  std::string value(const std::string& name, std::string fallback) const {
    const auto it = options.find(name);
    return it == options.end() ? fallback : it->second;
  }
};

Args parse(int argc, char** argv, int first,
           const std::set<std::string>& value_opts) {
  Args args;
  for (int i = first; i < argc; ++i) {
    std::string a = argv[i];
    if (a == "--host" && i + 2 < argc) {
      args.hosts.emplace_back(argv[i + 1], argv[i + 2]);
      i += 2;
    } else if (a.rfind("--", 0) == 0) {
      const auto key = a.substr(2);
      // --key=value binds inline (the only spelling for optional-value
      // flags like --isolate[=pool]); --key value consumes the next token
      // for the flags registered in value_opts.
      if (const auto eq = key.find('='); eq != std::string::npos) {
        args.options[key.substr(0, eq)] = key.substr(eq + 1);
      } else if (value_opts.count(key) != 0 && i + 1 < argc) {
        args.options[key] = argv[++i];
      } else {
        args.options[key] = "";
      }
    } else {
      args.positional.push_back(std::move(a));
    }
  }
  return args;
}

// --- checked numeric flags --------------------------------------------------
// Every numeric CLI flag goes through these. A malformed value ("--seed
// abc", "--jobs -1", "--scale 1e999", "--jobs 4x") prints a usage error
// and exits 2 — never an uncaught std::invalid_argument/out_of_range from
// a bare std::stoull/std::stod.

std::uint64_t parse_u64_flag(const char* cmd, const char* flag,
                             const std::string& text) {
  const auto parsed = support::parse_u64(text);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s: bad --%s value %s\n", cmd, flag,
                 parsed.error().c_str());
    std::exit(2);
  }
  return parsed.value();
}

double parse_double_flag(const char* cmd, const char* flag,
                         const std::string& text) {
  const auto parsed = support::parse_double(text);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s: bad --%s value %s\n", cmd, flag,
                 parsed.error().c_str());
    std::exit(2);
  }
  return parsed.value();
}

// --- observability plumbing (docs/OBSERVABILITY.md) -------------------------

/// Arm tracing/metrics from --trace/--metrics. Returns the trace path (""
/// = tracing off). Call before the run; finish with report_observability.
std::string configure_observability(const Args& args) {
  const std::string trace_path =
      args.flag("trace") ? args.value("trace", "") : std::string();
  if (!trace_path.empty()) support::set_trace_enabled(true);
  if (args.flag("metrics")) {
    support::set_metrics_enabled(true);
    support::metrics_reset();
  }
  return trace_path;
}

/// Write the Chrome trace (if armed) and print the per-stage latency table
/// + top-K slowest apps (if --metrics) to `out`.
int report_observability(const char* cmd, const Args& args,
                         const std::string& trace_path,
                         const driver::CorpusResult& result, std::FILE* out) {
  if (!trace_path.empty()) {
    support::set_trace_enabled(false);  // freeze the buffers before export
    const auto status = support::trace_write_chrome_json(trace_path);
    if (!status.ok()) {
      std::fprintf(stderr, "%s: %s\n", cmd, status.error().c_str());
      return 1;
    }
    const auto dropped = support::trace_dropped();
    std::fprintf(out, "  trace: %s (%zu spans%s)\n", trace_path.c_str(),
                 support::trace_collect().size(),
                 dropped > 0
                     ? support::format(", %llu dropped",
                                       static_cast<unsigned long long>(dropped))
                           .c_str()
                     : "");
  }
  if (args.flag("metrics")) {
    const auto snapshot = support::metrics_snapshot();
    static constexpr std::string_view kPrefixes[] = {"stage.", "phase.",
                                                     "runner.", "journal."};
    std::fprintf(out, "%s",
                 support::format_latency_table(snapshot, kPrefixes).c_str());
    for (const auto& counter : snapshot.counters) {
      std::fprintf(out, "  counter %-22s %llu\n", counter.name.c_str(),
                   static_cast<unsigned long long>(counter.value));
    }
    // Top-K slowest apps: where the corpus wall time actually went.
    const std::uint64_t top_k =
        parse_u64_flag(cmd, "top", args.value("top", "10"));
    std::vector<const driver::AppOutcome*> slowest;
    std::vector<std::size_t> indices(result.outcomes.size());
    for (std::size_t i = 0; i < result.outcomes.size(); ++i) indices[i] = i;
    std::sort(indices.begin(), indices.end(), [&](std::size_t a, std::size_t b) {
      const double wa = result.outcomes[a].wall_ms;
      const double wb = result.outcomes[b].wall_ms;
      return wa != wb ? wa > wb : a < b;  // deterministic tie-break
    });
    std::fprintf(out, "  top %zu slowest apps:\n",
                 std::min<std::size_t>(top_k, indices.size()));
    for (std::size_t rank = 0;
         rank < indices.size() && rank < static_cast<std::size_t>(top_k);
         ++rank) {
      const auto& outcome = result.outcomes[indices[rank]];
      if (!outcome.completed) continue;
      std::fprintf(
          out, "    #%-6zu %-32s %9.2f ms  attempts=%u%s%s\n", indices[rank],
          outcome.report.package.empty() ? "?" : outcome.report.package.c_str(),
          outcome.wall_ms, outcome.attempts,
          outcome.timed_out ? " timed-out" : "",
          outcome.quarantined ? " quarantined" : "");
    }
  }
  return 0;
}

// --- crash-safe journaling plumbing (docs/CHECKPOINT.md) --------------------

/// Set by the SIGINT/SIGTERM handler; polled by the corpus runner between
/// apps, so an in-flight app always finishes and is journaled.
std::atomic<bool> g_stop{false};

void handle_stop_signal(int) { g_stop.store(true); }

/// Put SIGINT/SIGTERM back to their default dispositions once the runner
/// has returned. The graceful-stop handler is only meaningful while the
/// run polls g_stop; leaving it installed through the (potentially long)
/// report/table printing phase made Ctrl-C a no-op — it flipped a flag
/// nobody reads anymore and the process could not be interrupted.
void restore_stop_signals() {
  std::signal(SIGINT, SIG_DFL);
  std::signal(SIGTERM, SIG_DFL);
}

/// Scope guard: arms on configure_journal's signal install, restores the
/// defaults when the run block exits — on the normal path and when the
/// runner throws (RunAborted's hint printing must be interruptible too).
struct StopSignalRestorer {
  bool armed = false;
  ~StopSignalRestorer() {
    if (armed) restore_stop_signals();
  }
};

/// Test hook (CLI regression harness): DYDROID_TEST_RAISE_STOP raises
/// SIGINT at the start of the report-printing phase, simulating an
/// operator's Ctrl-C after the run. With the default disposition restored
/// the signal must kill the process; under the old leaked handler it only
/// flipped g_stop and the report printed as if nothing happened.
void maybe_test_raise_stop() {
  if (const char* hook = std::getenv("DYDROID_TEST_RAISE_STOP");
      hook != nullptr && hook[0] != '\0') {
    std::raise(SIGINT);
  }
}

/// Fill the journal fields of a RunnerConfig from --journal / --resume /
/// --fsync. Returns the journal path ("" = journaling off). With a journal
/// active, SIGINT/SIGTERM switch from "kill the process" to "finish
/// in-flight apps, seal the journal, report how to resume".
std::string configure_journal(const Args& args,
                              driver::RunnerConfig& config) {
  const std::string path = args.flag("resume") ? args.value("resume", "")
                                               : args.value("journal", "");
  config.journal_path = path;
  config.resume = args.flag("resume");
  config.journal_fsync = args.flag("fsync");
  if (!path.empty()) {
    config.stop = &g_stop;
    std::signal(SIGINT, handle_stop_signal);
    std::signal(SIGTERM, handle_stop_signal);
  }
  return path;
}

// --- corpus sharding plumbing (docs/SHARDING.md) ----------------------------

/// Fill the shard fields of a RunnerConfig from --shard I/N. Returns the
/// shard spec ("" = unsharded); a malformed spec is a usage error (exit 2).
std::string configure_shard(const char* cmd, const Args& args,
                            driver::RunnerConfig& config) {
  if (!args.flag("shard")) return {};
  const std::string spec = args.value("shard", "");
  const auto slash = spec.find('/');
  std::uint64_t index = 0;
  std::uint64_t count = 0;
  bool bad = slash == std::string::npos;
  if (!bad) {
    const auto i = support::parse_u64(spec.substr(0, slash));
    const auto n = support::parse_u64(spec.substr(slash + 1));
    bad = !i.ok() || !n.ok();
    if (!bad) {
      index = i.value();
      count = n.value();
    }
  }
  if (bad || count == 0 || index >= count || count > 0xFFFFFFFFull) {
    std::fprintf(stderr,
                 "%s: bad --shard value '%s' (want I/N with 0 <= I < N)\n",
                 cmd, spec.c_str());
    std::exit(2);
  }
  config.shard_index = static_cast<std::uint32_t>(index);
  config.shard_count = static_cast<std::uint32_t>(count);
  return spec;
}

// --- result cache plumbing (docs/CACHE.md) ----------------------------------

/// Fill the cache fields of a RunnerConfig from --cache DIR and the
/// optional --cache-entries/--cache-bytes LRU bounds. Returns the cache
/// directory ("" = caching off).
std::string configure_cache(const char* cmd, const Args& args,
                            driver::RunnerConfig& config) {
  config.cache_dir = args.value("cache", "");
  if (config.cache_dir.empty()) return {};
  config.cache_max_entries = static_cast<std::size_t>(parse_u64_flag(
      cmd, "cache-entries", args.value("cache-entries", "0")));
  config.cache_max_bytes =
      parse_u64_flag(cmd, "cache-bytes", args.value("cache-bytes", "0"));
  config.cache_fsync = args.flag("fsync");
  return config.cache_dir;
}

// --- process-isolation plumbing (docs/ISOLATION.md) -------------------------

/// Fill the sandbox fields of a RunnerConfig from --isolate[=fork|pool],
/// --mem-limit and --recycle-apps. Returns true when isolation is on.
/// --mem-limit implies --isolate (a memory cap is only enforceable on a
/// forked child); a bare --isolate means fork-per-app.
bool configure_isolation(const char* cmd, const Args& args,
                         driver::RunnerConfig& config) {
  if (args.flag("isolate")) {
    const std::string mode = args.value("isolate", "");
    if (mode.empty() || mode == "fork") {
      config.isolation_mode = driver::IsolationMode::kForkPerApp;
    } else if (mode == "pool") {
      config.isolation_mode = driver::IsolationMode::kPool;
    } else {
      std::fprintf(stderr,
                   "%s: invalid --isolate mode '%s' (expected fork or pool)\n",
                   cmd, mode.c_str());
      std::exit(2);
    }
  }
  if (args.flag("mem-limit")) {
    if (!config.isolated()) {
      config.isolation_mode = driver::IsolationMode::kForkPerApp;
    }
    config.sandbox_mem_limit_bytes =
        parse_u64_flag(cmd, "mem-limit", args.value("mem-limit", "0"));
  }
  if (!config.isolated()) return false;
  if (args.flag("recycle-apps")) {
    config.pool_recycle_apps = static_cast<std::uint32_t>(parse_u64_flag(
        cmd, "recycle-apps", args.value("recycle-apps", "0")));
  }
  return true;
}

int cmd_gen(const Args& args) {
  if (args.positional.empty()) {
    std::fprintf(stderr, "gen: missing output path\n");
    return 2;
  }
  appgen::AppSpec spec;
  spec.package = args.value("pkg", "com.example.generated");
  spec.category = args.value("category", "Tools");
  spec.ad_sdk = args.flag("ad");
  spec.baidu_remote_sdk = args.flag("baidu");
  spec.analytics_sdk = args.flag("analytics");
  spec.own_dex_dcl = args.flag("own-dex");
  spec.sdk_native_dcl = args.flag("native");
  spec.lexical = args.flag("lexical");
  spec.dex_encryption = args.flag("pack");
  spec.reflection = args.flag("reflection");
  if (args.flag("malware")) {
    const auto name = args.value("malware", "swiss");
    malware::Family family = malware::Family::SwissCodeMonkeys;
    if (name == "adware") family = malware::Family::AdwareAirpushMinimob;
    if (name == "chathook") family = malware::Family::ChathookPtrace;
    spec.malware.push_back(appgen::MalwarePayloadSpec{family, {}});
  }
  if (args.flag("vuln")) {
    const auto kind = args.value("vuln", "dex-external");
    spec.vuln = kind == "native-other"
                    ? appgen::VulnKind::NativeOtherAppInternal
                    : appgen::VulnKind::DexExternalStorage;
    spec.min_sdk = 16;
  }
  support::Rng rng(parse_u64_flag("gen", "seed", args.value("seed", "1")));
  const auto app = appgen::build_app(spec, rng);
  write_file(args.positional[0], app.apk);
  std::printf("wrote %s (%zu bytes, package %s)\n",
              args.positional[0].c_str(), app.apk.size(),
              spec.package.c_str());
  // Side-car files so `analyze --host` can serve them.
  int i = 0;
  for (const auto& [url, payload] : app.scenario.hosted_urls) {
    const auto side = args.positional[0] + ".hosted." + std::to_string(i++);
    write_file(side, payload);
    std::printf("  remote dependency: --host %s %s\n", url.c_str(),
                side.c_str());
  }
  i = 0;
  for (const auto& companion : app.scenario.companion_apks) {
    const auto side = args.positional[0] + ".companion." + std::to_string(i++);
    write_file(side, companion);
    std::printf("  companion app: --companion %s\n", side.c_str());
  }
  return 0;
}

int cmd_analyze(const Args& args) {
  if (args.positional.empty()) {
    std::fprintf(stderr, "analyze: missing input path\n");
    return 2;
  }
  const auto bytes = support::Blob::take(read_file(args.positional[0]));
  core::PipelineOptions options;
  support::FaultPlan faults;  // must outlive the pipeline
  if (args.flag("faults")) {
    auto parsed = support::FaultPlan::parse(args.value("faults", ""));
    if (!parsed.ok()) {
      std::fprintf(stderr, "analyze: bad --faults plan: %s\n",
                   parsed.error().c_str());
      return 2;
    }
    faults = std::move(parsed.value());
    options.faults = &faults;
  }
  std::vector<std::pair<std::string, support::Bytes>> hosted;
  for (const auto& [url, file] : args.hosts) {
    hosted.emplace_back(url, read_file(file));
  }
  std::vector<support::Bytes> companions;
  if (args.flag("companion")) {
    companions.push_back(read_file(args.value("companion", "")));
  }
  options.scenario_setup = [hosted, companions](os::Device& device) {
    for (const auto& [url, payload] : hosted) {
      device.network().host(url, payload);
    }
    for (const auto& companion : companions) {
      (void)device.install(apk::ApkFile::deserialize(companion));
    }
  };
  malware::DroidNative detector(0.9);
  {
    support::Rng rng(0xD401DA);
    for (int f = 0; f < malware::kNumFamilies; ++f) {
      const auto family = malware::family_at(f);
      for (const auto& s :
           malware::generate_training_samples(family, 4, rng)) {
        detector.train(malware::family_name(family), s);
      }
    }
  }
  options.detector = &detector;
  const std::uint64_t seed =
      parse_u64_flag("analyze", "seed", args.value("seed", "1"));
  driver::RunnerConfig runner_config;
  const std::string journal_path = configure_journal(args, runner_config);
  const std::string shard_spec = configure_shard("analyze", args, runner_config);
  const std::string cache_dir = configure_cache("analyze", args, runner_config);
  const bool isolate = configure_isolation("analyze", args, runner_config);
  const std::string shard_hint =
      shard_spec.empty() ? std::string() : " --shard " + shard_spec;
  core::DyDroid pipeline(std::move(options));
  if (journal_path.empty() && cache_dir.empty() && !isolate &&
      shard_spec.empty()) {
    const auto report = pipeline.analyze(bytes, seed);
    std::printf("%s", core::report_to_json(report).c_str());
    return 0;
  }
  // Journaled and/or cached single-app run: route through the corpus
  // runner so the outcome is written ahead (and replayed byte-identically
  // on --resume) and/or served by the content-addressed cache.
  runner_config.jobs = 1;
  driver::AppJob job;
  job.apk = bytes;
  job.seed = seed;  // the journal validates the seed on resume
  const driver::CorpusRunner runner(pipeline, runner_config);
  driver::CorpusResult result;
  try {
    StopSignalRestorer restore;
    restore.armed = !journal_path.empty();
    result = runner.run(std::span<const driver::AppJob>(&job, 1));
  } catch (const driver::RunAborted& e) {
    std::fprintf(stderr, "analyze: %s\n", e.what());
    if (!journal_path.empty()) {
      std::fprintf(stderr,
                   "  resume with: dydroid analyze %s --resume %s%s\n",
                   args.positional[0].c_str(), journal_path.c_str(),
                   shard_hint.c_str());
    }
    return 3;
  }
  maybe_test_raise_stop();
  if (result.shard_apps == 0) {
    // A 1-app corpus sharded I/N with I > 0: this shard owns no apps —
    // a valid empty shard, not an error (its journal still carries the
    // shard metadata `dydroid merge` needs).
    std::printf("shard %s owns no apps of a 1-app corpus; nothing to do\n",
                shard_spec.c_str());
    return 0;
  }
  if (result.interrupted || result.outcomes.empty() ||
      !result.outcomes[0].completed) {
    std::fprintf(stderr, "analyze: interrupted before the app completed\n");
    if (!journal_path.empty()) {
      std::fprintf(stderr,
                   "  resume with: dydroid analyze %s --resume %s%s\n",
                   args.positional[0].c_str(), journal_path.c_str(),
                   shard_hint.c_str());
    }
    return 3;
  }
  if (isolate && result.outcomes[0].sandbox_fate != driver::SandboxFate::kNone) {
    std::fprintf(stderr, "analyze: sandbox: %s (signal %d)\n",
                 result.outcomes[0].report.crash_message.c_str(),
                 result.outcomes[0].fatal_signal);
  }
  std::printf("%s", core::report_to_json(result.outcomes[0].report).c_str());
  return 0;
}

int cmd_disasm(const Args& args) {
  if (args.positional.empty()) {
    std::fprintf(stderr, "disasm: missing input path\n");
    return 2;
  }
  const auto ir = analysis::decompile(read_file(args.positional[0]));
  if (!ir.ok()) {
    std::fprintf(stderr, "decompilation failed (anti-decompilation?): %s\n",
                 ir.error().c_str());
    return 1;
  }
  std::printf("%s\n-- manifest --\n%s", ir.value().smali.c_str(),
              ir.value().manifest.to_text().c_str());
  return 0;
}

int cmd_pack(const Args& args) {
  if (args.positional.size() < 2) {
    std::fprintf(stderr, "pack: need <in> <out>\n");
    return 2;
  }
  const auto apk = apk::ApkFile::deserialize(read_file(args.positional[0]));
  obfuscation::PackerOptions options;
  options.anti_repackaging = args.flag("trap");
  const auto packed = obfuscation::pack(apk, options);
  write_file(args.positional[1], packed.serialize());
  std::printf("packed -> %s\n", args.positional[1].c_str());
  return 0;
}

int cmd_unpack(const Args& args) {
  if (args.positional.size() < 2) {
    std::fprintf(stderr, "unpack: need <in> <out>\n");
    return 2;
  }
  const auto result = core::unpack_packed_app(
      read_file(args.positional[0]),
      parse_u64_flag("unpack", "seed", args.value("seed", "1")));
  if (!result.ok()) {
    std::fprintf(stderr, "unpack failed: %s\n", result.error().c_str());
    return 1;
  }
  write_file(args.positional[1], result.value().apk.serialize());
  std::printf("recovered payload from %s -> %s\n",
              result.value().payload_path.c_str(),
              args.positional[1].c_str());
  return 0;
}

int cmd_survey(const Args& args) {
  support::set_log_level(support::LogLevel::Error);
  appgen::CorpusConfig config;
  config.scale = parse_double_flag("survey", "scale", args.value("scale", "0.02"));
  config.seed = parse_u64_flag("survey", "seed", args.value("seed", "20161101"));
  const auto corpus = appgen::generate_corpus(config);
  malware::DroidNative detector(0.9);
  {
    support::Rng rng(0xD401DA);
    for (int f = 0; f < malware::kNumFamilies; ++f) {
      const auto family = malware::family_at(f);
      for (const auto& s :
           malware::generate_training_samples(family, 4, rng)) {
        detector.train(malware::family_name(family), s);
      }
    }
  }
  // One shared pipeline mapped over the corpus by the parallel driver
  // (worker count from --jobs, DYDROID_JOBS or hardware concurrency).
  core::PipelineOptions options;
  options.detector = &detector;
  support::FaultPlan faults;  // must outlive the pipeline
  if (args.flag("faults")) {
    auto parsed = support::FaultPlan::parse(args.value("faults", ""));
    if (!parsed.ok()) {
      std::fprintf(stderr, "survey: bad --faults plan: %s\n",
                   parsed.error().c_str());
      return 2;
    }
    faults = std::move(parsed.value());
    options.faults = &faults;
  }
  if (args.flag("budget")) {
    options.max_app_wall_ms =
        parse_double_flag("survey", "budget", args.value("budget", "0"));
  }
  options.retry_on_crash = args.flag("retry");
  const core::DyDroid pipeline(std::move(options));
  driver::RunnerConfig runner_config;
  runner_config.seed_base = 1;  // app N runs with seed 1 + N
  runner_config.jobs = static_cast<std::size_t>(
      parse_u64_flag("survey", "jobs", args.value("jobs", "0")));
  const std::string journal_path = configure_journal(args, runner_config);
  const std::string shard_spec = configure_shard("survey", args, runner_config);
  const std::string cache_dir = configure_cache("survey", args, runner_config);
  const bool isolate = configure_isolation("survey", args, runner_config);
  const std::string trace_path = configure_observability(args);
  const std::string shard_hint =
      shard_spec.empty() ? std::string() : " --shard " + shard_spec;
  const driver::CorpusRunner runner(pipeline, runner_config);
  driver::CorpusResult result;
  try {
    StopSignalRestorer restore;
    restore.armed = !journal_path.empty();
    result = runner.run(corpus);
  } catch (const driver::RunAborted& e) {
    std::fprintf(stderr, "survey: %s\n", e.what());
    std::fprintf(stderr,
                 "  the journal is sealed; resume with: dydroid survey "
                 "--scale %s --seed %s --resume %s%s\n",
                 args.value("scale", "0.02").c_str(),
                 args.value("seed", "20161101").c_str(), journal_path.c_str(),
                 shard_hint.c_str());
    return 3;
  }
  maybe_test_raise_stop();
  const auto& stats = result.stats;
  std::printf(
      "surveyed %zu apps: %zu intercepted DCL, %zu remote loaders, "
      "%zu malware carriers, %zu vulnerable\n",
      stats.apps, stats.intercepted, stats.remote_loaders,
      stats.malware_carriers, stats.vulnerable);
  std::printf(
      "  outcomes: %zu not-run, %zu rewriting-failure, %zu no-activity, "
      "%zu crashed, %zu exercised\n",
      stats.not_run, stats.rewriting_failure, stats.no_activity,
      stats.crashed, stats.exercised);
  if (stats.timed_out + stats.retried + stats.quarantined > 0 ||
      args.flag("faults") || args.flag("budget") || args.flag("retry")) {
    std::printf("  fault policy: %zu timed out, %zu retried, %zu quarantined\n",
                stats.timed_out, stats.retried, stats.quarantined);
  }
  if (isolate) {
    std::printf(
        "  sandbox: %s, %zu crashed, %zu oom-killed, "
        "%zu deadline-killed\n",
        runner_config.isolation_mode == driver::IsolationMode::kPool
            ? "worker-pool"
            : "fork-per-app",
        stats.sandbox_crashed, stats.killed_oom, stats.killed_timeout);
  }
  if (!shard_spec.empty()) {
    std::printf(
        "  shard %s: %zu of %zu apps (global indices %u mod %u; merge the "
        "shard journals with: dydroid merge)\n",
        shard_spec.c_str(), result.shard_apps, corpus.apps.size(),
        runner_config.shard_index, runner_config.shard_count);
  }
  if (!journal_path.empty()) {
    std::printf("  journal: %zu analyzed, %zu replayed -> %s\n",
                result.analyzed, result.replayed, journal_path.c_str());
  }
  if (!cache_dir.empty()) {
    std::printf(
        "  cache: %zu hits, %zu misses (%zu evicted, %zu invalidated, "
        "%zu write failures) -> %s\n",
        stats.cache_hits, stats.cache_misses, result.cache_evictions,
        result.cache_invalidated, result.cache_write_failures,
        cache_dir.c_str());
  }
  // Apps-vs-unique-binaries (the paper's dedup measurement): how much of
  // the corpus' loaded code is shared content.
  std::printf(
      "  binaries: %zu intercepted, %zu unique (%zu dex, %zu native), "
      "max reuse %zu, %llu duplicate bytes\n",
      result.dedup.total, result.dedup.unique, result.dedup.unique_dex,
      result.dedup.unique_native, result.dedup.max_reuse,
      static_cast<unsigned long long>(result.dedup.duplicate_bytes()));
  std::printf("  %.1f ms on %zu worker(s), %.0f apps/s\n", result.wall_ms,
              result.threads,
              result.wall_ms > 0
                  ? 1000.0 * static_cast<double>(stats.apps) / result.wall_ms
                  : 0.0);
  if (const int rc = report_observability("survey", args, trace_path, result,
                                          stdout);
      rc != 0) {
    return rc;
  }
  if (result.interrupted) {
    std::fprintf(stderr,
                 "survey: interrupted: %zu/%zu apps completed and journaled\n"
                 "  resume with: dydroid survey --scale %s --seed %s "
                 "--resume %s%s\n",
                 result.completed(), result.shard_apps,
                 args.value("scale", "0.02").c_str(),
                 args.value("seed", "20161101").c_str(), journal_path.c_str(),
                 shard_hint.c_str());
    return 3;
  }
  return 0;
}

int cmd_merge(const Args& args) {
  if (args.positional.size() < 2) {
    std::fprintf(stderr, "merge: need <out.journal> <shard.journal>...\n");
    return 2;
  }
  const std::vector<std::string> shards(args.positional.begin() + 1,
                                        args.positional.end());
  const auto merged = driver::merge_shard_journals(args.positional[0], shards);
  if (!merged.ok()) {
    std::fprintf(stderr, "%s\n", merged.error().c_str());
    return 1;
  }
  const driver::ShardMergeSummary& summary = merged.value();
  std::printf("merged %u shard journal(s): %zu app outcome(s) -> %s\n",
              summary.shard_count, summary.records_merged,
              args.positional[0].c_str());
  if (summary.duplicates_dropped > 0) {
    std::printf("  %zu superseded duplicate record(s) dropped "
                "(last-writer-wins)\n",
                summary.duplicates_dropped);
  }
  if (summary.torn_bytes > 0) {
    std::printf("  %zu torn/corrupt tail byte(s) recovered across inputs\n",
                summary.torn_bytes);
  }
  std::printf(
      "  replay with the matching survey: dydroid survey ... --resume %s\n",
      args.positional[0].c_str());
  return 0;
}

int cmd_faultcheck(const Args& args) {
  driver::FaultCheckOptions options;
  options.scale =
      parse_double_flag("faultcheck", "scale", args.value("scale", "0.0035"));
  options.corpus_seed =
      parse_u64_flag("faultcheck", "seed", args.value("seed", "20161101"));
  options.corruption_fraction = parse_double_flag(
      "faultcheck", "fraction", args.value("fraction", "0.35"));
  options.check_corruption = !args.flag("no-corruption");
  if (args.flag("jobs")) {
    // Comma list with a tolerated trailing comma ("1,2,8,"), but a
    // malformed element ("4x") or an empty list is a usage error.
    const auto list = support::parse_u64_list(args.value("jobs", ""));
    if (!list.ok()) {
      std::fprintf(stderr,
                   "faultcheck: bad --jobs list %s (want e.g. 1,2,8)\n",
                   list.error().c_str());
      return 2;
    }
    options.worker_counts.assign(list.value().begin(), list.value().end());
  }
  const auto report = driver::run_fault_matrix(options);
  std::printf("%s", driver::format_fault_check(report).c_str());
  return report.passed() ? 0 : 1;
}

void usage() {
  std::fprintf(
      stderr,
      "usage: dydroid "
      "<gen|analyze|disasm|pack|unpack|survey|merge|faultcheck> ...\n"
      "  gen <out.sapk> [--pkg P] [--ad] [--baidu] [--analytics]\n"
      "      [--own-dex] [--native] [--malware swiss|adware|chathook]\n"
      "      [--vuln dex-external|native-other] [--pack] [--lexical]\n"
      "      [--reflection] [--seed N]\n"
      "  analyze <app.sapk> [--seed N] [--host URL FILE]...\n"
      "      [--companion FILE] [--faults PLAN]\n"
      "      [--journal PATH | --resume PATH] [--cache DIR]\n"
      "      [--isolate[=fork|pool]] [--mem-limit BYTES]\n"
      "  disasm <app.sapk>\n"
      "  pack <in.sapk> <out.sapk> [--trap]\n"
      "  unpack <packed.sapk> <out.sapk> [--seed N]\n"
      "  survey [--scale S] [--seed N] [--jobs J] [--faults PLAN]\n"
      "      [--budget MS] [--retry] [--isolate[=fork|pool]]\n"
      "      [--mem-limit BYTES] [--recycle-apps K]\n"
      "      [--journal PATH | --resume PATH] [--fsync] [--shard I/N]\n"
      "      [--cache DIR] [--cache-entries N] [--cache-bytes N]\n"
      "      [--trace OUT.json] [--metrics] [--top K]\n"
      "  merge <out.journal> <shard.journal>...\n"
      "  faultcheck [--scale S] [--seed N] [--jobs 1,2,8] [--fraction F]\n"
      "      [--no-corruption]\n"
      "PLAN grammar (docs/FAULTS.md): site=always|never|nth:<N>|p:<P>,...\n"
      "Observability (docs/OBSERVABILITY.md): --trace writes a Chrome\n"
      "trace_event JSON; --metrics prints the per-stage latency table and\n"
      "the top-K slowest apps.\n"
      "Crash safety (docs/CHECKPOINT.md): --journal writes a CRC-framed\n"
      "write-ahead outcome log; a killed or interrupted run resumes with\n"
      "--resume PATH, re-running only the missing apps.\n"
      "Sharding (docs/SHARDING.md): --shard I/N runs only global corpus\n"
      "indices congruent to I mod N (seeds, journal records and cache keys\n"
      "stay global); `merge` folds the N shard journals into one journal\n"
      "whose --resume replay is byte-identical to an unsharded run.\n"
      "Result cache (docs/CACHE.md): --cache DIR replays identical\n"
      "(bytes, config, seed) work from a content-addressed store and\n"
      "dedups intercepted binaries corpus-wide; --cache-entries and\n"
      "--cache-bytes bound the store (LRU).\n"
      "Isolation (docs/ISOLATION.md): --isolate forks one sandboxed child\n"
      "per analysis attempt (crashes, hangs and OOMs are classified and\n"
      "quarantined, never fatal); --isolate=pool serves apps from one\n"
      "persistent forked worker per thread instead (same classification,\n"
      "the fork cost amortized away); --recycle-apps K retires a pooled\n"
      "worker after K apps; --mem-limit caps child RLIMIT_AS and implies\n"
      "--isolate.\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  const std::string cmd = argv[1];
  const std::set<std::string> value_opts = {
      "pkg", "category", "seed", "malware", "vuln", "scale", "companion",
      "jobs", "faults", "budget", "fraction", "journal", "resume", "shard",
      "trace", "top", "cache", "cache-entries", "cache-bytes", "mem-limit",
      "recycle-apps"};
  const auto args = parse(argc, argv, 2, value_opts);
  try {
    if (cmd == "gen") return cmd_gen(args);
    if (cmd == "analyze") return cmd_analyze(args);
    if (cmd == "disasm") return cmd_disasm(args);
    if (cmd == "pack") return cmd_pack(args);
    if (cmd == "unpack") return cmd_unpack(args);
    if (cmd == "survey") return cmd_survey(args);
    if (cmd == "merge") return cmd_merge(args);
    if (cmd == "faultcheck") return cmd_faultcheck(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "dydroid: %s\n", e.what());
    return 1;
  }
  usage();
  return 2;
}
