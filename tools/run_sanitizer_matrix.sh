#!/usr/bin/env bash
# Build and run the test suite under each sanitizer configuration.
#
#   tools/run_sanitizer_matrix.sh [asan|ubsan|tsan ...] [-- <ctest args>]
#
# With no arguments all three configs run. Each config builds into its own
# tree (build-asan / build-ubsan / build-tsan) so incremental re-runs are
# cheap. Extra arguments after `--` are forwarded to ctest — e.g.
#
#   tools/run_sanitizer_matrix.sh asan -- -L tier1
#
# runs only the fast tier-1 suite under AddressSanitizer, and
#
#   tools/run_sanitizer_matrix.sh tsan -- -L isolate
#
# runs just the fork-per-app sandbox suites (docs/ISOLATION.md) — worth a
# dedicated pass since they fork from worker threads, and
#
#   tools/run_sanitizer_matrix.sh tsan -- -L shard
#
# runs the sharded-execution and merge suites (docs/SHARDING.md), which
# replay merged journals at several worker counts and so make a good TSan
# target too. RLIMIT_AS is auto-skipped under ASan/TSan
# (address_space_limit_supported); the rest of the sandbox runs sanitized
# like everything else.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
jobs="$(nproc 2>/dev/null || echo 4)"

configs=()
ctest_args=()
parsing_ctest=false
for arg in "$@"; do
  if $parsing_ctest; then
    ctest_args+=("$arg")
  elif [[ "$arg" == "--" ]]; then
    parsing_ctest=true
  else
    configs+=("$arg")
  fi
done
if [[ ${#configs[@]} -eq 0 ]]; then
  configs=(asan ubsan tsan)
fi

flag_for() {
  case "$1" in
    asan) echo "-DDYDROID_ASAN=ON" ;;
    ubsan) echo "-DDYDROID_UBSAN=ON" ;;
    tsan) echo "-DDYDROID_TSAN=ON" ;;
    *)
      echo "unknown sanitizer config: $1 (want asan|ubsan|tsan)" >&2
      exit 2
      ;;
  esac
}

failed=()
for config in "${configs[@]}"; do
  flag="$(flag_for "$config")"
  build="$repo/build-$config"
  echo "==== [$config] configure + build ($flag) ===="
  cmake -S "$repo" -B "$build" "$flag" >/dev/null
  cmake --build "$build" -j "$jobs"
  echo "==== [$config] ctest ===="
  if ! ctest --test-dir "$build" --output-on-failure -j "$jobs" \
      "${ctest_args[@]+"${ctest_args[@]}"}"; then
    failed+=("$config")
  fi
done

if [[ ${#failed[@]} -gt 0 ]]; then
  echo "sanitizer matrix FAILED: ${failed[*]}" >&2
  exit 1
fi
echo "sanitizer matrix passed: ${configs[*]}"
