#!/usr/bin/env bash
# Kill/resume stress harness (docs/CHECKPOINT.md): repeatedly SIGKILL a
# `dydroid survey --journal` run at a random point, resume it, and diff the
# summary against an uninterrupted golden run. Each round then repeats the
# same cycle with a warm result cache (docs/CACHE.md) attached — replayed
# journal records plus warm cache hits must reproduce the same summary —
# and with the fork-per-app sandbox (docs/ISOLATION.md) on: journaled
# sandbox fates must resume to the same summary too.
#
#   tools/run_kill_resume.sh [rounds] [scale] [seed] [jobs]
#
# Defaults: 10 rounds, --scale 0.01, --seed 20161101, --jobs 2. The dydroid
# binary is taken from $DYDROID_CLI or ./build/tools/dydroid. Wall-clock
# lines ("... ms on N worker(s)"), the journal bookkeeping line and the
# cache hit/miss line differ between runs by construction and are stripped
# before the diff; everything else — the Table II outcome histogram and
# every measurement aspect — must be byte-identical. Exit status 1 on the
# first mismatch.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
rounds="${1:-10}"
scale="${2:-0.01}"
seed="${3:-20161101}"
jobs="${4:-2}"
cli="${DYDROID_CLI:-$repo/build/tools/dydroid}"

if [[ ! -x "$cli" ]]; then
  echo "run_kill_resume: dydroid binary not found at $cli" >&2
  echo "  build it first (cmake --build build) or set DYDROID_CLI" >&2
  exit 2
fi

workdir="$(mktemp -d "${TMPDIR:-/tmp}/dydroid_kill_resume.XXXXXX")"
trap 'rm -rf "$workdir"' EXIT

strip_timing() {
  grep -v -e ' ms on ' -e 'journal:' -e 'resume with' -e '  cache:' \
    -e '  sandbox:' "$1" || true
}

echo "==== golden run (scale=$scale seed=$seed jobs=$jobs) ===="
"$cli" survey --scale "$scale" --seed "$seed" --jobs "$jobs" \
  > "$workdir/golden.txt"
strip_timing "$workdir/golden.txt" > "$workdir/golden.stable"

# Warm cache for the cached kill/resume cycle: one full cached run, so
# every later lookup under the same (bytes, config, seed) key hits.
cachedir="$workdir/cache"
echo "==== warming result cache ===="
"$cli" survey --scale "$scale" --seed "$seed" --jobs "$jobs" \
  --cache "$cachedir" > /dev/null

kill_resume_round() {
  local tag="$1"; shift
  local journal="$workdir/$tag.jrnl"
  local out="$workdir/$tag.txt"
  rm -f "$journal"

  # Journaled run in the background, killed after a random 5-120 ms.
  "$cli" survey --scale "$scale" --seed "$seed" --jobs "$jobs" \
    --journal "$journal" "$@" > /dev/null 2>&1 &
  local pid=$!
  local delay_ms=$((5 + RANDOM % 116))
  sleep "$(printf '0.%03d' "$delay_ms")"
  if kill -9 "$pid" 2>/dev/null; then
    verdict="killed after ${delay_ms}ms"
  else
    verdict="finished before the kill (${delay_ms}ms)"
  fi
  wait "$pid" 2>/dev/null || true

  # Resume. A kill before the journal header exists is a valid (if boring)
  # outcome: there is nothing to resume, so re-run from scratch.
  if [[ -s "$journal" ]]; then
    "$cli" survey --scale "$scale" --seed "$seed" --jobs "$jobs" \
      --resume "$journal" "$@" > "$out" 2>/dev/null
  else
    "$cli" survey --scale "$scale" --seed "$seed" --jobs "$jobs" \
      "$@" > "$out" 2>/dev/null
    verdict="$verdict, no journal yet"
  fi

  strip_timing "$out" > "$out.stable"
  if ! diff -u "$workdir/golden.stable" "$out.stable"; then
    echo "$tag: resumed summary DIFFERS from golden ($verdict)" >&2
    exit 1
  fi
  echo "$tag: ok ($verdict)"
}

for round in $(seq 1 "$rounds"); do
  kill_resume_round "round$round"
  kill_resume_round "round$round-cached" --cache "$cachedir"
  kill_resume_round "round$round-isolated" --isolate
done

echo "kill/resume harness passed: $rounds rounds" \
  "(plain + warm-cache + isolate) byte-identical"
