#!/usr/bin/env bash
# Shard/merge equivalence harness (docs/SHARDING.md): split a survey across
# N shards with `--shard I/N --journal`, fold the shard journals back into
# one with `dydroid merge`, replay the merged journal with `--resume`, and
# diff the summary against an unsharded golden run. Repeated for every
# shard count in the matrix, then one chaos round per shard count: SIGKILL
# a random shard mid-run, resume that shard to completion, merge, replay —
# the summary must still match the golden byte for byte.
#
#   tools/run_shard_matrix.sh [scale] [seed] [jobs] [shard_counts...]
#
# Defaults: --scale 0.01, --seed 20161101, --jobs 2, shard counts 2 3 8.
# The dydroid binary is taken from $DYDROID_CLI or ./build/tools/dydroid.
# Wall-clock lines ("... ms on N worker(s)"), the journal bookkeeping line
# and the shard summary line differ between runs by construction and are
# stripped before the diff; everything else — the Table II outcome
# histogram and every measurement aspect — must be byte-identical. Exit
# status 1 on the first mismatch.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
scale="${1:-0.01}"
seed="${2:-20161101}"
jobs="${3:-2}"
shift $(( $# > 3 ? 3 : $# ))
shard_counts=("${@:-}")
if [[ ${#shard_counts[@]} -eq 0 || -z "${shard_counts[0]}" ]]; then
  shard_counts=(2 3 8)
fi
cli="${DYDROID_CLI:-$repo/build/tools/dydroid}"

if [[ ! -x "$cli" ]]; then
  echo "run_shard_matrix: dydroid binary not found at $cli" >&2
  echo "  build it first (cmake --build build) or set DYDROID_CLI" >&2
  exit 2
fi

workdir="$(mktemp -d "${TMPDIR:-/tmp}/dydroid_shard_matrix.XXXXXX")"
trap 'rm -rf "$workdir"' EXIT

strip_timing() {
  grep -v -e ' ms on ' -e 'journal:' -e 'resume with' -e '  shard ' \
    "$1" || true
}

echo "==== golden run (scale=$scale seed=$seed jobs=$jobs) ===="
"$cli" survey --scale "$scale" --seed "$seed" --jobs "$jobs" \
  > "$workdir/golden.txt"
strip_timing "$workdir/golden.txt" > "$workdir/golden.stable"

# Replay a merged journal and diff the stable summary against golden.
check_replay() {
  local tag="$1" merged="$2"
  local out="$workdir/$tag.replay.txt"
  "$cli" survey --scale "$scale" --seed "$seed" --jobs "$jobs" \
    --resume "$merged" > "$out"
  strip_timing "$out" > "$out.stable"
  if ! diff -u "$workdir/golden.stable" "$out.stable"; then
    echo "$tag: merged replay DIFFERS from golden" >&2
    exit 1
  fi
}

shard_round() {
  local n="$1"
  local journals=()
  for (( i = 0; i < n; i++ )); do
    local journal="$workdir/s${n}_${i}.jrnl"
    rm -f "$journal"
    "$cli" survey --scale "$scale" --seed "$seed" --jobs "$jobs" \
      --shard "$i/$n" --journal "$journal" > /dev/null
    journals+=("$journal")
  done
  local merged="$workdir/s${n}_merged.jrnl"
  "$cli" merge "$merged" "${journals[@]}" > /dev/null
  check_replay "shards=$n" "$merged"
  echo "shards=$n: ok (merged replay byte-identical)"
}

chaos_round() {
  local n="$1"
  local victim=$(( RANDOM % n ))
  local journals=()
  for (( i = 0; i < n; i++ )); do
    local journal="$workdir/c${n}_${i}.jrnl"
    rm -f "$journal"
    if (( i == victim )); then
      # Kill this shard after a random 3-25 ms — a shard run is ~1/N of
      # the golden wall time, so the window is tighter than the
      # kill/resume harness's, and the victim runs single-threaded to
      # stretch it. Then resume it (a no-op if it finished; a fresh run
      # if the kill landed before the journal header).
      "$cli" survey --scale "$scale" --seed "$seed" --jobs 1 \
        --shard "$i/$n" --journal "$journal" > /dev/null 2>&1 &
      local pid=$!
      local delay_ms=$(( 3 + RANDOM % 23 ))
      sleep "$(printf '0.%03d' "$delay_ms")"
      local verdict="finished before the kill (${delay_ms}ms)"
      if kill -9 "$pid" 2>/dev/null; then
        verdict="killed after ${delay_ms}ms"
      fi
      wait "$pid" 2>/dev/null || true
      # A kill before the journal header exists leaves nothing to resume.
      if [[ -s "$journal" ]]; then
        "$cli" survey --scale "$scale" --seed "$seed" --jobs "$jobs" \
          --shard "$i/$n" --resume "$journal" > /dev/null
      else
        "$cli" survey --scale "$scale" --seed "$seed" --jobs "$jobs" \
          --shard "$i/$n" --journal "$journal" > /dev/null
        verdict="$verdict, no journal yet"
      fi
      echo "  chaos shards=$n: shard $i/$n $verdict, resumed"
    else
      "$cli" survey --scale "$scale" --seed "$seed" --jobs "$jobs" \
        --shard "$i/$n" --journal "$journal" > /dev/null
    fi
    journals+=("$journal")
  done
  local merged="$workdir/c${n}_merged.jrnl"
  "$cli" merge "$merged" "${journals[@]}" > /dev/null
  check_replay "chaos-shards=$n" "$merged"
  echo "chaos shards=$n: ok (kill/resume/merge replay byte-identical)"
}

for n in "${shard_counts[@]}"; do
  shard_round "$n"
  chaos_round "$n"
done

echo "shard matrix passed: shard counts [${shard_counts[*]}]" \
  "(clean + kill/resume chaos) byte-identical"
