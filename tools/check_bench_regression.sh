#!/usr/bin/env bash
# Bench regression gate: diff the measured overheads in BENCH_corpus.json
# against the committed budgets so a perf regression fails loudly instead
# of silently rotting in a JSON nobody reads.
#
#   tools/check_bench_regression.sh [path/to/BENCH_corpus.json]
#
# Defaults to the BENCH_corpus.json at the repo root (the committed
# baseline); point it at build/BENCH_corpus.json after a fresh
# `./build/bench/micro_perf` run to gate new numbers before committing
# them. Exit 1 on the first budget violation, 2 on a missing file/tool.
#
# Budgets (sources: docs/OBSERVABILITY.md cost contract, docs/ISOLATION.md
# overhead table, docs/CHECKPOINT.md):
#   metrics.overhead_pct            <= 15   instrumentation-on corpus cost
#   journaled.overhead_pct          <= 25   write-ahead journal cost
#   isolation.pool.speedup_vs_fork  >= 5    the point of the worker pool
#   fork overhead >= 5 * pool overhead      same claim, via overhead_pct
#   every *_identical flag          == true behavior never drifts for speed
#   cache.hit_rate                  == 1.0  warm run replays every app
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
json="${1:-$repo/BENCH_corpus.json}"

if ! command -v jq > /dev/null; then
  echo "check_bench_regression: jq not found on PATH" >&2
  exit 2
fi
if [[ ! -r "$json" ]]; then
  echo "check_bench_regression: $json not found" >&2
  echo "  run ./build/bench/micro_perf to (re)generate it" >&2
  exit 2
fi

failures=0

# $1 = jq path, $2 = comparison op for awk, $3 = budget, $4 = what it means.
check_number() {
  local path="$1" op="$2" budget="$3" label="$4"
  local value
  value="$(jq -er "$path" "$json")" || {
    echo "FAIL $label: $path missing from $json" >&2
    failures=$((failures + 1))
    return
  }
  if awk -v v="$value" -v b="$budget" "BEGIN { exit !(v $op b) }"; then
    echo "ok   $label: $path = $value (budget $op $budget)"
  else
    echo "FAIL $label: $path = $value violates budget $op $budget" >&2
    failures=$((failures + 1))
  fi
}

# $1 = jq path, $2 = what it means.
check_true() {
  local path="$1" label="$2"
  local value
  value="$(jq -er "$path" "$json")" || value="missing"
  if [[ "$value" == "true" ]]; then
    echo "ok   $label: $path = true"
  else
    echo "FAIL $label: $path = $value, expected true" >&2
    failures=$((failures + 1))
  fi
}

echo "==== bench budgets vs $json ===="
check_number '.metrics.overhead_pct' '<=' 15 "metrics instrumentation"
check_number '.journaled.overhead_pct' '<=' 25 "write-ahead journal"
check_number '.isolation.pool.speedup_vs_fork' '>=' 5 "pool vs fork wall"

# The same >= 5x claim stated on overheads relative to thread mode: the
# fork tax must dwarf the pool tax (a pool overhead at or below zero is
# measurement noise and trivially passes).
fork_pct="$(jq -er '.isolation.fork_per_app.overhead_pct' "$json")" || fork_pct=""
pool_pct="$(jq -er '.isolation.pool.overhead_pct' "$json")" || pool_pct=""
if [[ -z "$fork_pct" || -z "$pool_pct" ]]; then
  echo "FAIL isolation overheads missing from $json" >&2
  failures=$((failures + 1))
elif awk -v f="$fork_pct" -v p="$pool_pct" 'BEGIN { exit !(f >= 5 * p) }'; then
  echo "ok   pool overhead: fork $fork_pct% >= 5 * pool $pool_pct%"
else
  echo "FAIL pool overhead: fork $fork_pct% < 5 * pool $pool_pct%" >&2
  failures=$((failures + 1))
fi

check_true '.reports_identical' "serial vs parallel reports"
check_true '.isolation.fork_per_app.reports_identical' "fork-mode reports"
check_true '.isolation.pool.reports_identical' "pool-mode reports"
check_true '.sharding.replayed_identical' "sharded merge replay"
check_number '.cache.hit_rate' '>=' 1 "warm cache hit rate"

if [[ "$failures" -gt 0 ]]; then
  echo "bench regression check FAILED: $failures budget violation(s)" >&2
  exit 1
fi
echo "bench regression check passed"
