#!/usr/bin/env bash
# Isolation matrix (docs/ISOLATION.md): prove both isolation flavors —
# fork-per-app and the persistent worker pool — are golden against thread
# mode from the real CLI, then prove they survive hostile signals.
#
#   tools/run_isolation_matrix.sh [scale] [seed] [kill_rounds]
#
# Phases:
#   1. Golden thread-mode survey.
#   2. `--isolate` surveys at 1/2/8 workers — summaries must be
#      byte-identical to the golden one (timing and sandbox-bookkeeping
#      lines stripped; clean children reproduce thread-mode reports).
#   3. `--isolate=pool` surveys at 1/2/8 workers, plus a round with an
#      aggressive `--recycle-apps` budget — all byte-identical to golden
#      (recycling happens between attempts, so it may never show up in a
#      report).
#   4. Child-kill rounds: `--isolate` and `--isolate=pool` surveys while
#      random live sandbox children are `kill -9`ed mid-run. Fork mode
#      respawns the killed attempt's child; pool mode re-dispatches the
#      in-flight app on a fresh worker. Either way the summary must still
#      match golden.
#   5. Kill/resume rounds: journaled `--isolate` / `--isolate=pool`
#      surveys SIGKILLed at a random point, resumed with `--resume`,
#      compared to golden.
#
# Defaults: --scale 0.01, --seed 20161101, 5 kill rounds. The dydroid
# binary is taken from $DYDROID_CLI or ./build/tools/dydroid. Exit 1 on
# the first mismatch.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
scale="${1:-0.01}"
seed="${2:-20161101}"
kill_rounds="${3:-5}"
cli="${DYDROID_CLI:-$repo/build/tools/dydroid}"

if [[ ! -x "$cli" ]]; then
  echo "run_isolation_matrix: dydroid binary not found at $cli" >&2
  echo "  build it first (cmake --build build) or set DYDROID_CLI" >&2
  exit 2
fi

workdir="$(mktemp -d "${TMPDIR:-/tmp}/dydroid_isolation.XXXXXX")"
trap 'rm -rf "$workdir"' EXIT

# Wall-clock lines, journal bookkeeping and the sandbox summary line (the
# golden run is thread mode and has none) differ by construction.
strip_timing() {
  grep -v -e ' ms on ' -e 'journal:' -e 'resume with' -e '  sandbox:' "$1" \
    || true
}

echo "==== golden thread-mode survey (scale=$scale seed=$seed) ===="
"$cli" survey --scale "$scale" --seed "$seed" --jobs 2 \
  > "$workdir/golden.txt"
strip_timing "$workdir/golden.txt" > "$workdir/golden.stable"

echo "==== golden equivalence: --isolate at 1/2/8 workers ===="
for jobs in 1 2 8; do
  out="$workdir/isolate-j$jobs.txt"
  "$cli" survey --scale "$scale" --seed "$seed" --jobs "$jobs" --isolate \
    > "$out"
  strip_timing "$out" > "$out.stable"
  if ! diff -u "$workdir/golden.stable" "$out.stable"; then
    echo "isolate summary at jobs=$jobs DIFFERS from thread mode" >&2
    exit 1
  fi
  echo "jobs=$jobs: byte-identical to thread mode"
done

echo "==== golden equivalence: --isolate=pool at 1/2/8 workers ===="
for jobs in 1 2 8; do
  out="$workdir/pool-j$jobs.txt"
  "$cli" survey --scale "$scale" --seed "$seed" --jobs "$jobs" \
    --isolate=pool > "$out"
  strip_timing "$out" > "$out.stable"
  if ! diff -u "$workdir/golden.stable" "$out.stable"; then
    echo "pool summary at jobs=$jobs DIFFERS from thread mode" >&2
    exit 1
  fi
  echo "pool jobs=$jobs: byte-identical to thread mode"
done

# Recycling tears a worker down between attempts; an aggressive budget
# forces many mid-run respawns that must never reach a report.
out="$workdir/pool-recycle.txt"
"$cli" survey --scale "$scale" --seed "$seed" --jobs 2 --isolate=pool \
  --recycle-apps 5 > "$out"
strip_timing "$out" > "$out.stable"
if ! diff -u "$workdir/golden.stable" "$out.stable"; then
  echo "pool summary with --recycle-apps 5 DIFFERS from thread mode" >&2
  exit 1
fi
echo "pool --recycle-apps 5: byte-identical to thread mode"

# $1 = mode label for logs, $2 = seconds to sleep between shots ("0" for
# none), $3... = extra CLI flags for the mode.
childkill_rounds() {
  local mode="$1" throttle="$2"; shift 2
  for round in $(seq 1 "$kill_rounds"); do
    local out="$workdir/childkill-$mode-$round.txt"
    "$cli" survey --scale "$scale" --seed "$seed" --jobs 2 "$@" \
      > "$out" 2>/dev/null &
    local survey_pid=$!
    local kills=0
    # Fork children are short-lived (one per app attempt), so shoot as
    # fast as the loop allows; pkill observes and kills in one process,
    # the best odds of landing inside a child's window. Pool workers are
    # the opposite — alive the whole run — so an unthrottled loop would
    # land a kill every few milliseconds and could legitimately escalate
    # one app past the bounded external-kill respawns into a killed_oom
    # outcome; the pool round spaces its shots instead. Deterministic
    # respawn/re-dispatch coverage lives in tests/isolation_test.cpp and
    # tests/worker_pool_test.cpp; these rounds are the live chaos version.
    # Landed kills are transparently absorbed (fork: attempt respawned;
    # pool: in-flight app re-dispatched on a fresh worker), so the summary
    # must stay golden regardless.
    while kill -0 "$survey_pid" 2>/dev/null; do
      if pkill -9 -P "$survey_pid" 2>/dev/null; then
        kills=$((kills + 1))
      fi
      if [[ "$throttle" != 0 ]]; then sleep "$throttle"; fi
    done
    wait "$survey_pid"
    strip_timing "$out" > "$out.stable"
    if ! diff -u "$workdir/golden.stable" "$out.stable"; then
      echo "childkill($mode) round $round: summary DIFFERS after" \
        "$kills child kills" >&2
      exit 1
    fi
    echo "childkill($mode) round $round: ok ($kills kills landed, absorbed)"
  done
}

echo "==== child-kill rounds: kill -9 random live sandbox children ===="
childkill_rounds fork 0 --isolate
childkill_rounds pool 0.02 --isolate=pool

# $1 = mode label for logs, $2... = extra CLI flags for the mode.
resume_rounds() {
  local mode="$1"; shift
  for round in $(seq 1 "$kill_rounds"); do
    local journal="$workdir/resume-$mode-$round.jrnl"
    local out="$workdir/resume-$mode-$round.txt"
    rm -f "$journal"
    "$cli" survey --scale "$scale" --seed "$seed" --jobs 2 "$@" \
      --journal "$journal" > /dev/null 2>&1 &
    local survey_pid=$!
    local delay_ms=$((5 + RANDOM % 116))
    sleep "$(printf '0.%03d' "$delay_ms")"
    local verdict
    if kill -9 "$survey_pid" 2>/dev/null; then
      verdict="killed after ${delay_ms}ms"
    else
      verdict="finished before the kill (${delay_ms}ms)"
    fi
    wait "$survey_pid" 2>/dev/null || true

    if [[ -s "$journal" ]]; then
      "$cli" survey --scale "$scale" --seed "$seed" --jobs 2 "$@" \
        --resume "$journal" > "$out" 2>/dev/null
    else
      "$cli" survey --scale "$scale" --seed "$seed" --jobs 2 "$@" \
        > "$out" 2>/dev/null
      verdict="$verdict, no journal yet"
    fi
    strip_timing "$out" > "$out.stable"
    if ! diff -u "$workdir/golden.stable" "$out.stable"; then
      echo "resume($mode) round $round: summary DIFFERS from golden" \
        "($verdict)" >&2
      exit 1
    fi
    echo "resume($mode) round $round: ok ($verdict)"
  done
}

echo "==== kill/resume rounds: SIGKILL the journaled isolated survey ===="
resume_rounds fork --isolate
resume_rounds pool --isolate=pool

echo "isolation matrix passed: fork + pool golden at 1/2/8 workers," \
  "pool recycle round, $kill_rounds child-kill + $kill_rounds kill/resume" \
  "rounds per mode byte-identical"
