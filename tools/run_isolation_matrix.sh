#!/usr/bin/env bash
# Isolation matrix (docs/ISOLATION.md): prove the fork-per-app sandbox is
# golden against thread mode from the real CLI, then prove it survives
# hostile signals.
#
#   tools/run_isolation_matrix.sh [scale] [seed] [kill_rounds]
#
# Phases:
#   1. Golden thread-mode survey.
#   2. `--isolate` surveys at 1/2/8 workers — summaries must be
#      byte-identical to the golden one (timing and sandbox-bookkeeping
#      lines stripped; clean children reproduce thread-mode reports).
#   3. Child-kill round: an `--isolate` survey while random live sandbox
#      children are `kill -9`ed mid-run. The supervisor transparently
#      respawns externally-killed children, so the summary must still
#      match golden.
#   4. Kill/resume round: a journaled `--isolate` survey SIGKILLed at a
#      random point, resumed with `--resume`, compared to golden.
#
# Defaults: --scale 0.01, --seed 20161101, 5 kill rounds. The dydroid
# binary is taken from $DYDROID_CLI or ./build/tools/dydroid. Exit 1 on
# the first mismatch.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
scale="${1:-0.01}"
seed="${2:-20161101}"
kill_rounds="${3:-5}"
cli="${DYDROID_CLI:-$repo/build/tools/dydroid}"

if [[ ! -x "$cli" ]]; then
  echo "run_isolation_matrix: dydroid binary not found at $cli" >&2
  echo "  build it first (cmake --build build) or set DYDROID_CLI" >&2
  exit 2
fi

workdir="$(mktemp -d "${TMPDIR:-/tmp}/dydroid_isolation.XXXXXX")"
trap 'rm -rf "$workdir"' EXIT

# Wall-clock lines, journal bookkeeping and the sandbox summary line (the
# golden run is thread mode and has none) differ by construction.
strip_timing() {
  grep -v -e ' ms on ' -e 'journal:' -e 'resume with' -e '  sandbox:' "$1" \
    || true
}

echo "==== golden thread-mode survey (scale=$scale seed=$seed) ===="
"$cli" survey --scale "$scale" --seed "$seed" --jobs 2 \
  > "$workdir/golden.txt"
strip_timing "$workdir/golden.txt" > "$workdir/golden.stable"

echo "==== golden equivalence: --isolate at 1/2/8 workers ===="
for jobs in 1 2 8; do
  out="$workdir/isolate-j$jobs.txt"
  "$cli" survey --scale "$scale" --seed "$seed" --jobs "$jobs" --isolate \
    > "$out"
  strip_timing "$out" > "$out.stable"
  if ! diff -u "$workdir/golden.stable" "$out.stable"; then
    echo "isolate summary at jobs=$jobs DIFFERS from thread mode" >&2
    exit 1
  fi
  echo "jobs=$jobs: byte-identical to thread mode"
done

echo "==== child-kill rounds: kill -9 random live sandbox children ===="
for round in $(seq 1 "$kill_rounds"); do
  out="$workdir/childkill-$round.txt"
  "$cli" survey --scale "$scale" --seed "$seed" --jobs 2 --isolate \
    > "$out" 2>/dev/null &
  survey_pid=$!
  kills=0
  # Children are short-lived (one per app attempt), so shoot as fast as
  # the loop allows; pkill observes and kills in one process, the best
  # odds of landing inside a child's window. On a fast machine with a
  # small corpus every shot may still miss — the deterministic respawn
  # coverage lives in tests/isolation_test.cpp; this round is the live
  # chaos version. Landed kills are transparently respawned, so the
  # summary must stay golden regardless.
  while kill -0 "$survey_pid" 2>/dev/null; do
    if pkill -9 -P "$survey_pid" 2>/dev/null; then
      kills=$((kills + 1))
    fi
  done
  wait "$survey_pid"
  strip_timing "$out" > "$out.stable"
  if ! diff -u "$workdir/golden.stable" "$out.stable"; then
    echo "childkill round $round: summary DIFFERS after $kills child kills" >&2
    exit 1
  fi
  echo "childkill round $round: ok ($kills child kills landed, respawned)"
done

echo "==== kill/resume rounds: SIGKILL the journaled --isolate survey ===="
for round in $(seq 1 "$kill_rounds"); do
  journal="$workdir/resume-$round.jrnl"
  out="$workdir/resume-$round.txt"
  rm -f "$journal"
  "$cli" survey --scale "$scale" --seed "$seed" --jobs 2 --isolate \
    --journal "$journal" > /dev/null 2>&1 &
  survey_pid=$!
  delay_ms=$((5 + RANDOM % 116))
  sleep "$(printf '0.%03d' "$delay_ms")"
  if kill -9 "$survey_pid" 2>/dev/null; then
    verdict="killed after ${delay_ms}ms"
  else
    verdict="finished before the kill (${delay_ms}ms)"
  fi
  wait "$survey_pid" 2>/dev/null || true

  if [[ -s "$journal" ]]; then
    "$cli" survey --scale "$scale" --seed "$seed" --jobs 2 --isolate \
      --resume "$journal" > "$out" 2>/dev/null
  else
    "$cli" survey --scale "$scale" --seed "$seed" --jobs 2 --isolate \
      > "$out" 2>/dev/null
    verdict="$verdict, no journal yet"
  fi
  strip_timing "$out" > "$out.stable"
  if ! diff -u "$workdir/golden.stable" "$out.stable"; then
    echo "resume round $round: summary DIFFERS from golden ($verdict)" >&2
    exit 1
  fi
  echo "resume round $round: ok ($verdict)"
done

echo "isolation matrix passed: golden at 1/2/8 workers," \
  "$kill_rounds child-kill + $kill_rounds kill/resume rounds byte-identical"
