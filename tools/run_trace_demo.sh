#!/usr/bin/env bash
# Observability demo (docs/OBSERVABILITY.md): run a small corpus survey with
# tracing + metrics armed, sanity-check the Chrome trace_event JSON, and
# print where to load it.
#
#   tools/run_trace_demo.sh [scale] [seed] [jobs] [out.json]
#
# Defaults: --scale 0.01, --seed 20161101, --jobs 2, trace written next to a
# temp summary in a scratch dir unless an output path is given. The dydroid
# binary is taken from $DYDROID_CLI or ./build/tools/dydroid. Exit status 1
# if the trace file is missing or contains no span events.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
scale="${1:-0.01}"
seed="${2:-20161101}"
jobs="${3:-2}"
out="${4:-}"
cli="${DYDROID_CLI:-$repo/build/tools/dydroid}"

if [[ ! -x "$cli" ]]; then
  echo "run_trace_demo: dydroid binary not found at $cli" >&2
  echo "  build it first (cmake --build build) or set DYDROID_CLI" >&2
  exit 2
fi

workdir="$(mktemp -d "${TMPDIR:-/tmp}/dydroid_trace_demo.XXXXXX")"
if [[ -z "$out" ]]; then
  out="$workdir/trace.json"
  keep=0
else
  keep=1
fi
trap 'rm -rf "$workdir"' EXIT

echo "==== traced survey (scale=$scale seed=$seed jobs=$jobs) ===="
"$cli" survey --scale "$scale" --seed "$seed" --jobs "$jobs" \
  --trace "$out" --metrics --top 5

if [[ ! -s "$out" ]]; then
  echo "run_trace_demo: no trace written to $out" >&2
  exit 1
fi

spans="$( (grep -o '"ph":"X"' "$out" || true) | wc -l | tr -d ' ')"
if [[ "$spans" -lt 1 ]]; then
  echo "run_trace_demo: trace $out contains no complete events" >&2
  exit 1
fi
for cat in stage phase runner; do
  if ! grep -q "\"cat\":\"$cat\"" "$out"; then
    echo "run_trace_demo: trace $out has no '$cat' spans" >&2
    exit 1
  fi
done

echo
echo "trace demo passed: $spans spans in $out"
if [[ "$keep" -eq 1 ]]; then
  echo "load it in chrome://tracing or https://ui.perfetto.dev"
else
  echo "(scratch trace discarded; pass an output path to keep it)"
fi
