file(REMOVE_RECURSE
  "CMakeFiles/table09_vulnerable.dir/table09_vulnerable.cpp.o"
  "CMakeFiles/table09_vulnerable.dir/table09_vulnerable.cpp.o.d"
  "table09_vulnerable"
  "table09_vulnerable.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table09_vulnerable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
