# Empty compiler generated dependencies file for table09_vulnerable.
# This may be replaced when dependencies are built.
