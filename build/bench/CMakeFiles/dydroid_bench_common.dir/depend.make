# Empty dependencies file for dydroid_bench_common.
# This may be replaced when dependencies are built.
