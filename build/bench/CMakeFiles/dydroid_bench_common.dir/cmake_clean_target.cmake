file(REMOVE_RECURSE
  "libdydroid_bench_common.a"
)
