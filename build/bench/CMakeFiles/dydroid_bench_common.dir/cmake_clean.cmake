file(REMOVE_RECURSE
  "CMakeFiles/dydroid_bench_common.dir/common.cpp.o"
  "CMakeFiles/dydroid_bench_common.dir/common.cpp.o.d"
  "libdydroid_bench_common.a"
  "libdydroid_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dydroid_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
