# Empty dependencies file for fig03_dex_encryption_categories.
# This may be replaced when dependencies are built.
