file(REMOVE_RECURSE
  "CMakeFiles/fig03_dex_encryption_categories.dir/fig03_dex_encryption_categories.cpp.o"
  "CMakeFiles/fig03_dex_encryption_categories.dir/fig03_dex_encryption_categories.cpp.o.d"
  "fig03_dex_encryption_categories"
  "fig03_dex_encryption_categories.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_dex_encryption_categories.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
