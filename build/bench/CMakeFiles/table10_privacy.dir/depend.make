# Empty dependencies file for table10_privacy.
# This may be replaced when dependencies are built.
