file(REMOVE_RECURSE
  "CMakeFiles/table10_privacy.dir/table10_privacy.cpp.o"
  "CMakeFiles/table10_privacy.dir/table10_privacy.cpp.o.d"
  "table10_privacy"
  "table10_privacy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table10_privacy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
