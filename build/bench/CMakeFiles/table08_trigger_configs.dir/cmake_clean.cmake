file(REMOVE_RECURSE
  "CMakeFiles/table08_trigger_configs.dir/table08_trigger_configs.cpp.o"
  "CMakeFiles/table08_trigger_configs.dir/table08_trigger_configs.cpp.o.d"
  "table08_trigger_configs"
  "table08_trigger_configs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table08_trigger_configs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
