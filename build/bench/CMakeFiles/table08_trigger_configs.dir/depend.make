# Empty dependencies file for table08_trigger_configs.
# This may be replaced when dependencies are built.
