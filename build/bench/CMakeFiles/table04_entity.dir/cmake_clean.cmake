file(REMOVE_RECURSE
  "CMakeFiles/table04_entity.dir/table04_entity.cpp.o"
  "CMakeFiles/table04_entity.dir/table04_entity.cpp.o.d"
  "table04_entity"
  "table04_entity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table04_entity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
