# Empty compiler generated dependencies file for table04_entity.
# This may be replaced when dependencies are built.
