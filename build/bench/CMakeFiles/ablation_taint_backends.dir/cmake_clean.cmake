file(REMOVE_RECURSE
  "CMakeFiles/ablation_taint_backends.dir/ablation_taint_backends.cpp.o"
  "CMakeFiles/ablation_taint_backends.dir/ablation_taint_backends.cpp.o.d"
  "ablation_taint_backends"
  "ablation_taint_backends.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_taint_backends.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
