file(REMOVE_RECURSE
  "CMakeFiles/ablation_attribution.dir/ablation_attribution.cpp.o"
  "CMakeFiles/ablation_attribution.dir/ablation_attribution.cpp.o.d"
  "ablation_attribution"
  "ablation_attribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_attribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
