# Empty dependencies file for ablation_attribution.
# This may be replaced when dependencies are built.
