file(REMOVE_RECURSE
  "CMakeFiles/discussion_coverage.dir/discussion_coverage.cpp.o"
  "CMakeFiles/discussion_coverage.dir/discussion_coverage.cpp.o.d"
  "discussion_coverage"
  "discussion_coverage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/discussion_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
