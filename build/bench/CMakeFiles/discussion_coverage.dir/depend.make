# Empty dependencies file for discussion_coverage.
# This may be replaced when dependencies are built.
