# Empty dependencies file for table01_flow_rules.
# This may be replaced when dependencies are built.
