file(REMOVE_RECURSE
  "CMakeFiles/table01_flow_rules.dir/table01_flow_rules.cpp.o"
  "CMakeFiles/table01_flow_rules.dir/table01_flow_rules.cpp.o.d"
  "table01_flow_rules"
  "table01_flow_rules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table01_flow_rules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
