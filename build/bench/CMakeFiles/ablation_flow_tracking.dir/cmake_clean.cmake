file(REMOVE_RECURSE
  "CMakeFiles/ablation_flow_tracking.dir/ablation_flow_tracking.cpp.o"
  "CMakeFiles/ablation_flow_tracking.dir/ablation_flow_tracking.cpp.o.d"
  "ablation_flow_tracking"
  "ablation_flow_tracking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_flow_tracking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
