# Empty compiler generated dependencies file for ablation_flow_tracking.
# This may be replaced when dependencies are built.
