file(REMOVE_RECURSE
  "CMakeFiles/table05_remote_fetch.dir/table05_remote_fetch.cpp.o"
  "CMakeFiles/table05_remote_fetch.dir/table05_remote_fetch.cpp.o.d"
  "table05_remote_fetch"
  "table05_remote_fetch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table05_remote_fetch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
