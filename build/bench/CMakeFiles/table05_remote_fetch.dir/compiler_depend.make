# Empty compiler generated dependencies file for table05_remote_fetch.
# This may be replaced when dependencies are built.
