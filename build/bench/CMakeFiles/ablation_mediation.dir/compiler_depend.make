# Empty compiler generated dependencies file for ablation_mediation.
# This may be replaced when dependencies are built.
