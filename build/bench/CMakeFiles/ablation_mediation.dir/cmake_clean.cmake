file(REMOVE_RECURSE
  "CMakeFiles/ablation_mediation.dir/ablation_mediation.cpp.o"
  "CMakeFiles/ablation_mediation.dir/ablation_mediation.cpp.o.d"
  "ablation_mediation"
  "ablation_mediation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_mediation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
