# Empty dependencies file for table06_obfuscation.
# This may be replaced when dependencies are built.
