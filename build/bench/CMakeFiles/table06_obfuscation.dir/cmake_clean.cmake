file(REMOVE_RECURSE
  "CMakeFiles/table06_obfuscation.dir/table06_obfuscation.cpp.o"
  "CMakeFiles/table06_obfuscation.dir/table06_obfuscation.cpp.o.d"
  "table06_obfuscation"
  "table06_obfuscation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table06_obfuscation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
