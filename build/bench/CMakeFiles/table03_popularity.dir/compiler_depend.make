# Empty compiler generated dependencies file for table03_popularity.
# This may be replaced when dependencies are built.
