file(REMOVE_RECURSE
  "CMakeFiles/table03_popularity.dir/table03_popularity.cpp.o"
  "CMakeFiles/table03_popularity.dir/table03_popularity.cpp.o.d"
  "table03_popularity"
  "table03_popularity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table03_popularity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
