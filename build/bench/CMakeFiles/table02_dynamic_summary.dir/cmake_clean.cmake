file(REMOVE_RECURSE
  "CMakeFiles/table02_dynamic_summary.dir/table02_dynamic_summary.cpp.o"
  "CMakeFiles/table02_dynamic_summary.dir/table02_dynamic_summary.cpp.o.d"
  "table02_dynamic_summary"
  "table02_dynamic_summary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table02_dynamic_summary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
