file(REMOVE_RECURSE
  "CMakeFiles/remote_loader.dir/remote_loader.cpp.o"
  "CMakeFiles/remote_loader.dir/remote_loader.cpp.o.d"
  "remote_loader"
  "remote_loader.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/remote_loader.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
