# Empty compiler generated dependencies file for remote_loader.
# This may be replaced when dependencies are built.
