file(REMOVE_RECURSE
  "CMakeFiles/market_survey.dir/market_survey.cpp.o"
  "CMakeFiles/market_survey.dir/market_survey.cpp.o.d"
  "market_survey"
  "market_survey.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/market_survey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
