# Empty compiler generated dependencies file for market_survey.
# This may be replaced when dependencies are built.
