# Empty dependencies file for packer_analysis.
# This may be replaced when dependencies are built.
