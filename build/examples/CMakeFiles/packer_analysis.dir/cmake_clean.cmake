file(REMOVE_RECURSE
  "CMakeFiles/packer_analysis.dir/packer_analysis.cpp.o"
  "CMakeFiles/packer_analysis.dir/packer_analysis.cpp.o.d"
  "packer_analysis"
  "packer_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/packer_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
