file(REMOVE_RECURSE
  "CMakeFiles/exception_handling_test.dir/exception_handling_test.cpp.o"
  "CMakeFiles/exception_handling_test.dir/exception_handling_test.cpp.o.d"
  "exception_handling_test"
  "exception_handling_test.pdb"
  "exception_handling_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exception_handling_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
