# Empty compiler generated dependencies file for exception_handling_test.
# This may be replaced when dependencies are built.
