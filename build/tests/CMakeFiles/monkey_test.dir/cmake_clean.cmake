file(REMOVE_RECURSE
  "CMakeFiles/monkey_test.dir/monkey_test.cpp.o"
  "CMakeFiles/monkey_test.dir/monkey_test.cpp.o.d"
  "monkey_test"
  "monkey_test.pdb"
  "monkey_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/monkey_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
