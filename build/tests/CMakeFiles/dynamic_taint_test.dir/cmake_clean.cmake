file(REMOVE_RECURSE
  "CMakeFiles/dynamic_taint_test.dir/dynamic_taint_test.cpp.o"
  "CMakeFiles/dynamic_taint_test.dir/dynamic_taint_test.cpp.o.d"
  "dynamic_taint_test"
  "dynamic_taint_test.pdb"
  "dynamic_taint_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamic_taint_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
