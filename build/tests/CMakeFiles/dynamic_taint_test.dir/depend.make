# Empty dependencies file for dynamic_taint_test.
# This may be replaced when dependencies are built.
