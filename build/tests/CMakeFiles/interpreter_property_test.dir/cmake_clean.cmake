file(REMOVE_RECURSE
  "CMakeFiles/interpreter_property_test.dir/interpreter_property_test.cpp.o"
  "CMakeFiles/interpreter_property_test.dir/interpreter_property_test.cpp.o.d"
  "interpreter_property_test"
  "interpreter_property_test.pdb"
  "interpreter_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interpreter_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
