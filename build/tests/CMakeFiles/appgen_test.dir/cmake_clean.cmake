file(REMOVE_RECURSE
  "CMakeFiles/appgen_test.dir/appgen_test.cpp.o"
  "CMakeFiles/appgen_test.dir/appgen_test.cpp.o.d"
  "appgen_test"
  "appgen_test.pdb"
  "appgen_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/appgen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
