# Empty dependencies file for appgen_test.
# This may be replaced when dependencies are built.
