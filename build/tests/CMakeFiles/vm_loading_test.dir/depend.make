# Empty dependencies file for vm_loading_test.
# This may be replaced when dependencies are built.
