file(REMOVE_RECURSE
  "CMakeFiles/vm_loading_test.dir/vm_loading_test.cpp.o"
  "CMakeFiles/vm_loading_test.dir/vm_loading_test.cpp.o.d"
  "vm_loading_test"
  "vm_loading_test.pdb"
  "vm_loading_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vm_loading_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
