file(REMOVE_RECURSE
  "CMakeFiles/unpacker_test.dir/unpacker_test.cpp.o"
  "CMakeFiles/unpacker_test.dir/unpacker_test.cpp.o.d"
  "unpacker_test"
  "unpacker_test.pdb"
  "unpacker_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unpacker_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
