# Empty compiler generated dependencies file for unpacker_test.
# This may be replaced when dependencies are built.
