file(REMOVE_RECURSE
  "CMakeFiles/nativebin_test.dir/nativebin_test.cpp.o"
  "CMakeFiles/nativebin_test.dir/nativebin_test.cpp.o.d"
  "nativebin_test"
  "nativebin_test.pdb"
  "nativebin_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nativebin_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
