# Empty compiler generated dependencies file for nativebin_test.
# This may be replaced when dependencies are built.
