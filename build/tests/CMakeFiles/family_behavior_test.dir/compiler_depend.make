# Empty compiler generated dependencies file for family_behavior_test.
# This may be replaced when dependencies are built.
