file(REMOVE_RECURSE
  "CMakeFiles/family_behavior_test.dir/family_behavior_test.cpp.o"
  "CMakeFiles/family_behavior_test.dir/family_behavior_test.cpp.o.d"
  "family_behavior_test"
  "family_behavior_test.pdb"
  "family_behavior_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/family_behavior_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
