
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/apk_test.cpp" "tests/CMakeFiles/apk_test.dir/apk_test.cpp.o" "gcc" "tests/CMakeFiles/apk_test.dir/apk_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apk/CMakeFiles/dydroid_apk.dir/DependInfo.cmake"
  "/root/repo/build/src/manifest/CMakeFiles/dydroid_manifest.dir/DependInfo.cmake"
  "/root/repo/build/src/nativebin/CMakeFiles/dydroid_nativebin.dir/DependInfo.cmake"
  "/root/repo/build/src/dex/CMakeFiles/dydroid_dex.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/dydroid_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
