# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/dex_test[1]_include.cmake")
include("/root/repo/build/tests/manifest_test[1]_include.cmake")
include("/root/repo/build/tests/apk_test[1]_include.cmake")
include("/root/repo/build/tests/nativebin_test[1]_include.cmake")
include("/root/repo/build/tests/os_test[1]_include.cmake")
include("/root/repo/build/tests/vm_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/monkey_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/obfuscation_test[1]_include.cmake")
include("/root/repo/build/tests/malware_test[1]_include.cmake")
include("/root/repo/build/tests/privacy_test[1]_include.cmake")
include("/root/repo/build/tests/appgen_test[1]_include.cmake")
include("/root/repo/build/tests/security_test[1]_include.cmake")
include("/root/repo/build/tests/core_unit_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/report_json_test[1]_include.cmake")
include("/root/repo/build/tests/vm_loading_test[1]_include.cmake")
include("/root/repo/build/tests/engine_test[1]_include.cmake")
include("/root/repo/build/tests/unpacker_test[1]_include.cmake")
include("/root/repo/build/tests/frameworks_test[1]_include.cmake")
include("/root/repo/build/tests/family_behavior_test[1]_include.cmake")
include("/root/repo/build/tests/dynamic_taint_test[1]_include.cmake")
include("/root/repo/build/tests/interpreter_property_test[1]_include.cmake")
include("/root/repo/build/tests/exception_handling_test[1]_include.cmake")
