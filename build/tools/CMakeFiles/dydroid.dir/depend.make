# Empty dependencies file for dydroid.
# This may be replaced when dependencies are built.
