file(REMOVE_RECURSE
  "CMakeFiles/dydroid.dir/dydroid_cli.cpp.o"
  "CMakeFiles/dydroid.dir/dydroid_cli.cpp.o.d"
  "dydroid"
  "dydroid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dydroid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
