file(REMOVE_RECURSE
  "CMakeFiles/dydroid_obfuscation.dir/detector.cpp.o"
  "CMakeFiles/dydroid_obfuscation.dir/detector.cpp.o.d"
  "CMakeFiles/dydroid_obfuscation.dir/language_db.cpp.o"
  "CMakeFiles/dydroid_obfuscation.dir/language_db.cpp.o.d"
  "CMakeFiles/dydroid_obfuscation.dir/lexical.cpp.o"
  "CMakeFiles/dydroid_obfuscation.dir/lexical.cpp.o.d"
  "CMakeFiles/dydroid_obfuscation.dir/packer.cpp.o"
  "CMakeFiles/dydroid_obfuscation.dir/packer.cpp.o.d"
  "CMakeFiles/dydroid_obfuscation.dir/poison.cpp.o"
  "CMakeFiles/dydroid_obfuscation.dir/poison.cpp.o.d"
  "libdydroid_obfuscation.a"
  "libdydroid_obfuscation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dydroid_obfuscation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
