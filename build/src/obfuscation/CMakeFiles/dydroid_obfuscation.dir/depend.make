# Empty dependencies file for dydroid_obfuscation.
# This may be replaced when dependencies are built.
