file(REMOVE_RECURSE
  "libdydroid_obfuscation.a"
)
