file(REMOVE_RECURSE
  "CMakeFiles/dydroid_privacy.dir/flowdroid.cpp.o"
  "CMakeFiles/dydroid_privacy.dir/flowdroid.cpp.o.d"
  "CMakeFiles/dydroid_privacy.dir/sources.cpp.o"
  "CMakeFiles/dydroid_privacy.dir/sources.cpp.o.d"
  "libdydroid_privacy.a"
  "libdydroid_privacy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dydroid_privacy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
