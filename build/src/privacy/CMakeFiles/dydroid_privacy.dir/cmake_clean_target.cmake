file(REMOVE_RECURSE
  "libdydroid_privacy.a"
)
