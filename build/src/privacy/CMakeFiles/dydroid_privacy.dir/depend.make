# Empty dependencies file for dydroid_privacy.
# This may be replaced when dependencies are built.
