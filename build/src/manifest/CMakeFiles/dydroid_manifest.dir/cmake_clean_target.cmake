file(REMOVE_RECURSE
  "libdydroid_manifest.a"
)
