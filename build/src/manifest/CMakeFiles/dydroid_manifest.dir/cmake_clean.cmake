file(REMOVE_RECURSE
  "CMakeFiles/dydroid_manifest.dir/manifest.cpp.o"
  "CMakeFiles/dydroid_manifest.dir/manifest.cpp.o.d"
  "libdydroid_manifest.a"
  "libdydroid_manifest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dydroid_manifest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
