# Empty compiler generated dependencies file for dydroid_manifest.
# This may be replaced when dependencies are built.
