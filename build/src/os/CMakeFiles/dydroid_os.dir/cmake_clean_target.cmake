file(REMOVE_RECURSE
  "libdydroid_os.a"
)
