# Empty dependencies file for dydroid_os.
# This may be replaced when dependencies are built.
