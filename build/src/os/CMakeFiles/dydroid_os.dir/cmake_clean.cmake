file(REMOVE_RECURSE
  "CMakeFiles/dydroid_os.dir/device.cpp.o"
  "CMakeFiles/dydroid_os.dir/device.cpp.o.d"
  "CMakeFiles/dydroid_os.dir/network.cpp.o"
  "CMakeFiles/dydroid_os.dir/network.cpp.o.d"
  "CMakeFiles/dydroid_os.dir/package_manager.cpp.o"
  "CMakeFiles/dydroid_os.dir/package_manager.cpp.o.d"
  "CMakeFiles/dydroid_os.dir/services.cpp.o"
  "CMakeFiles/dydroid_os.dir/services.cpp.o.d"
  "CMakeFiles/dydroid_os.dir/vfs.cpp.o"
  "CMakeFiles/dydroid_os.dir/vfs.cpp.o.d"
  "libdydroid_os.a"
  "libdydroid_os.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dydroid_os.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
