file(REMOVE_RECURSE
  "libdydroid_monkey.a"
)
