# Empty dependencies file for dydroid_monkey.
# This may be replaced when dependencies are built.
