file(REMOVE_RECURSE
  "CMakeFiles/dydroid_monkey.dir/monkey.cpp.o"
  "CMakeFiles/dydroid_monkey.dir/monkey.cpp.o.d"
  "libdydroid_monkey.a"
  "libdydroid_monkey.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dydroid_monkey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
