# Empty compiler generated dependencies file for dydroid_appgen.
# This may be replaced when dependencies are built.
