file(REMOVE_RECURSE
  "CMakeFiles/dydroid_appgen.dir/corpus.cpp.o"
  "CMakeFiles/dydroid_appgen.dir/corpus.cpp.o.d"
  "CMakeFiles/dydroid_appgen.dir/generator.cpp.o"
  "CMakeFiles/dydroid_appgen.dir/generator.cpp.o.d"
  "CMakeFiles/dydroid_appgen.dir/spec.cpp.o"
  "CMakeFiles/dydroid_appgen.dir/spec.cpp.o.d"
  "libdydroid_appgen.a"
  "libdydroid_appgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dydroid_appgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
