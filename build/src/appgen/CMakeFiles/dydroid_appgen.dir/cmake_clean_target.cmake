file(REMOVE_RECURSE
  "libdydroid_appgen.a"
)
