# Empty compiler generated dependencies file for dydroid_vm.
# This may be replaced when dependencies are built.
