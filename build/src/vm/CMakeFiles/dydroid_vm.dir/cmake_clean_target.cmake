file(REMOVE_RECURSE
  "libdydroid_vm.a"
)
