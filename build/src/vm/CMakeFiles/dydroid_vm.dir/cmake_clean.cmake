file(REMOVE_RECURSE
  "CMakeFiles/dydroid_vm.dir/frameworks.cpp.o"
  "CMakeFiles/dydroid_vm.dir/frameworks.cpp.o.d"
  "CMakeFiles/dydroid_vm.dir/stack_trace.cpp.o"
  "CMakeFiles/dydroid_vm.dir/stack_trace.cpp.o.d"
  "CMakeFiles/dydroid_vm.dir/value.cpp.o"
  "CMakeFiles/dydroid_vm.dir/value.cpp.o.d"
  "CMakeFiles/dydroid_vm.dir/vm.cpp.o"
  "CMakeFiles/dydroid_vm.dir/vm.cpp.o.d"
  "libdydroid_vm.a"
  "libdydroid_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dydroid_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
