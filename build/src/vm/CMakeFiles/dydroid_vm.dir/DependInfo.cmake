
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vm/frameworks.cpp" "src/vm/CMakeFiles/dydroid_vm.dir/frameworks.cpp.o" "gcc" "src/vm/CMakeFiles/dydroid_vm.dir/frameworks.cpp.o.d"
  "/root/repo/src/vm/stack_trace.cpp" "src/vm/CMakeFiles/dydroid_vm.dir/stack_trace.cpp.o" "gcc" "src/vm/CMakeFiles/dydroid_vm.dir/stack_trace.cpp.o.d"
  "/root/repo/src/vm/value.cpp" "src/vm/CMakeFiles/dydroid_vm.dir/value.cpp.o" "gcc" "src/vm/CMakeFiles/dydroid_vm.dir/value.cpp.o.d"
  "/root/repo/src/vm/vm.cpp" "src/vm/CMakeFiles/dydroid_vm.dir/vm.cpp.o" "gcc" "src/vm/CMakeFiles/dydroid_vm.dir/vm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/os/CMakeFiles/dydroid_os.dir/DependInfo.cmake"
  "/root/repo/build/src/apk/CMakeFiles/dydroid_apk.dir/DependInfo.cmake"
  "/root/repo/build/src/nativebin/CMakeFiles/dydroid_nativebin.dir/DependInfo.cmake"
  "/root/repo/build/src/manifest/CMakeFiles/dydroid_manifest.dir/DependInfo.cmake"
  "/root/repo/build/src/dex/CMakeFiles/dydroid_dex.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/dydroid_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
