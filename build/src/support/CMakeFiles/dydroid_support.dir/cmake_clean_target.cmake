file(REMOVE_RECURSE
  "libdydroid_support.a"
)
