# Empty dependencies file for dydroid_support.
# This may be replaced when dependencies are built.
