file(REMOVE_RECURSE
  "CMakeFiles/dydroid_support.dir/bytes.cpp.o"
  "CMakeFiles/dydroid_support.dir/bytes.cpp.o.d"
  "CMakeFiles/dydroid_support.dir/hash.cpp.o"
  "CMakeFiles/dydroid_support.dir/hash.cpp.o.d"
  "CMakeFiles/dydroid_support.dir/log.cpp.o"
  "CMakeFiles/dydroid_support.dir/log.cpp.o.d"
  "CMakeFiles/dydroid_support.dir/strings.cpp.o"
  "CMakeFiles/dydroid_support.dir/strings.cpp.o.d"
  "libdydroid_support.a"
  "libdydroid_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dydroid_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
