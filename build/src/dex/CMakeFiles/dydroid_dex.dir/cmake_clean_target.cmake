file(REMOVE_RECURSE
  "libdydroid_dex.a"
)
