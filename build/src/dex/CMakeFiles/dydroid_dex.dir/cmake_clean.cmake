file(REMOVE_RECURSE
  "CMakeFiles/dydroid_dex.dir/builder.cpp.o"
  "CMakeFiles/dydroid_dex.dir/builder.cpp.o.d"
  "CMakeFiles/dydroid_dex.dir/dexfile.cpp.o"
  "CMakeFiles/dydroid_dex.dir/dexfile.cpp.o.d"
  "CMakeFiles/dydroid_dex.dir/disassembler.cpp.o"
  "CMakeFiles/dydroid_dex.dir/disassembler.cpp.o.d"
  "libdydroid_dex.a"
  "libdydroid_dex.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dydroid_dex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
