# Empty dependencies file for dydroid_dex.
# This may be replaced when dependencies are built.
