# CMake generated Testfile for 
# Source directory: /root/repo/src/dex
# Build directory: /root/repo/build/src/dex
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
