file(REMOVE_RECURSE
  "CMakeFiles/dydroid_core.dir/dcl_log.cpp.o"
  "CMakeFiles/dydroid_core.dir/dcl_log.cpp.o.d"
  "CMakeFiles/dydroid_core.dir/download_tracker.cpp.o"
  "CMakeFiles/dydroid_core.dir/download_tracker.cpp.o.d"
  "CMakeFiles/dydroid_core.dir/dynamic_taint.cpp.o"
  "CMakeFiles/dydroid_core.dir/dynamic_taint.cpp.o.d"
  "CMakeFiles/dydroid_core.dir/engine.cpp.o"
  "CMakeFiles/dydroid_core.dir/engine.cpp.o.d"
  "CMakeFiles/dydroid_core.dir/interceptor.cpp.o"
  "CMakeFiles/dydroid_core.dir/interceptor.cpp.o.d"
  "CMakeFiles/dydroid_core.dir/pipeline.cpp.o"
  "CMakeFiles/dydroid_core.dir/pipeline.cpp.o.d"
  "CMakeFiles/dydroid_core.dir/report_json.cpp.o"
  "CMakeFiles/dydroid_core.dir/report_json.cpp.o.d"
  "CMakeFiles/dydroid_core.dir/static_filter.cpp.o"
  "CMakeFiles/dydroid_core.dir/static_filter.cpp.o.d"
  "CMakeFiles/dydroid_core.dir/unpacker.cpp.o"
  "CMakeFiles/dydroid_core.dir/unpacker.cpp.o.d"
  "CMakeFiles/dydroid_core.dir/vulnerability.cpp.o"
  "CMakeFiles/dydroid_core.dir/vulnerability.cpp.o.d"
  "libdydroid_core.a"
  "libdydroid_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dydroid_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
