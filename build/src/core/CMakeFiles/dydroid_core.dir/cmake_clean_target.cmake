file(REMOVE_RECURSE
  "libdydroid_core.a"
)
