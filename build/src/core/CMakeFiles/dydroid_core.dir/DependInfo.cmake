
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/dcl_log.cpp" "src/core/CMakeFiles/dydroid_core.dir/dcl_log.cpp.o" "gcc" "src/core/CMakeFiles/dydroid_core.dir/dcl_log.cpp.o.d"
  "/root/repo/src/core/download_tracker.cpp" "src/core/CMakeFiles/dydroid_core.dir/download_tracker.cpp.o" "gcc" "src/core/CMakeFiles/dydroid_core.dir/download_tracker.cpp.o.d"
  "/root/repo/src/core/dynamic_taint.cpp" "src/core/CMakeFiles/dydroid_core.dir/dynamic_taint.cpp.o" "gcc" "src/core/CMakeFiles/dydroid_core.dir/dynamic_taint.cpp.o.d"
  "/root/repo/src/core/engine.cpp" "src/core/CMakeFiles/dydroid_core.dir/engine.cpp.o" "gcc" "src/core/CMakeFiles/dydroid_core.dir/engine.cpp.o.d"
  "/root/repo/src/core/interceptor.cpp" "src/core/CMakeFiles/dydroid_core.dir/interceptor.cpp.o" "gcc" "src/core/CMakeFiles/dydroid_core.dir/interceptor.cpp.o.d"
  "/root/repo/src/core/pipeline.cpp" "src/core/CMakeFiles/dydroid_core.dir/pipeline.cpp.o" "gcc" "src/core/CMakeFiles/dydroid_core.dir/pipeline.cpp.o.d"
  "/root/repo/src/core/report_json.cpp" "src/core/CMakeFiles/dydroid_core.dir/report_json.cpp.o" "gcc" "src/core/CMakeFiles/dydroid_core.dir/report_json.cpp.o.d"
  "/root/repo/src/core/static_filter.cpp" "src/core/CMakeFiles/dydroid_core.dir/static_filter.cpp.o" "gcc" "src/core/CMakeFiles/dydroid_core.dir/static_filter.cpp.o.d"
  "/root/repo/src/core/unpacker.cpp" "src/core/CMakeFiles/dydroid_core.dir/unpacker.cpp.o" "gcc" "src/core/CMakeFiles/dydroid_core.dir/unpacker.cpp.o.d"
  "/root/repo/src/core/vulnerability.cpp" "src/core/CMakeFiles/dydroid_core.dir/vulnerability.cpp.o" "gcc" "src/core/CMakeFiles/dydroid_core.dir/vulnerability.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/vm/CMakeFiles/dydroid_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/monkey/CMakeFiles/dydroid_monkey.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/dydroid_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/obfuscation/CMakeFiles/dydroid_obfuscation.dir/DependInfo.cmake"
  "/root/repo/build/src/malware/CMakeFiles/dydroid_malware.dir/DependInfo.cmake"
  "/root/repo/build/src/privacy/CMakeFiles/dydroid_privacy.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/dydroid_os.dir/DependInfo.cmake"
  "/root/repo/build/src/apk/CMakeFiles/dydroid_apk.dir/DependInfo.cmake"
  "/root/repo/build/src/nativebin/CMakeFiles/dydroid_nativebin.dir/DependInfo.cmake"
  "/root/repo/build/src/manifest/CMakeFiles/dydroid_manifest.dir/DependInfo.cmake"
  "/root/repo/build/src/dex/CMakeFiles/dydroid_dex.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/dydroid_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
