# Empty dependencies file for dydroid_core.
# This may be replaced when dependencies are built.
