# Empty compiler generated dependencies file for dydroid_apk.
# This may be replaced when dependencies are built.
