file(REMOVE_RECURSE
  "CMakeFiles/dydroid_apk.dir/apk.cpp.o"
  "CMakeFiles/dydroid_apk.dir/apk.cpp.o.d"
  "libdydroid_apk.a"
  "libdydroid_apk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dydroid_apk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
