file(REMOVE_RECURSE
  "libdydroid_apk.a"
)
