file(REMOVE_RECURSE
  "libdydroid_nativebin.a"
)
