# Empty compiler generated dependencies file for dydroid_nativebin.
# This may be replaced when dependencies are built.
