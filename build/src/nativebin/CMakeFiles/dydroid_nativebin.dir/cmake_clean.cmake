file(REMOVE_RECURSE
  "CMakeFiles/dydroid_nativebin.dir/native_library.cpp.o"
  "CMakeFiles/dydroid_nativebin.dir/native_library.cpp.o.d"
  "libdydroid_nativebin.a"
  "libdydroid_nativebin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dydroid_nativebin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
