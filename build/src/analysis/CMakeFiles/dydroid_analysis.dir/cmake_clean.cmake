file(REMOVE_RECURSE
  "CMakeFiles/dydroid_analysis.dir/cfg.cpp.o"
  "CMakeFiles/dydroid_analysis.dir/cfg.cpp.o.d"
  "CMakeFiles/dydroid_analysis.dir/decompiler.cpp.o"
  "CMakeFiles/dydroid_analysis.dir/decompiler.cpp.o.d"
  "CMakeFiles/dydroid_analysis.dir/rewriter.cpp.o"
  "CMakeFiles/dydroid_analysis.dir/rewriter.cpp.o.d"
  "libdydroid_analysis.a"
  "libdydroid_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dydroid_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
