file(REMOVE_RECURSE
  "libdydroid_analysis.a"
)
