# Empty dependencies file for dydroid_analysis.
# This may be replaced when dependencies are built.
