# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("dex")
subdirs("nativebin")
subdirs("manifest")
subdirs("apk")
subdirs("os")
subdirs("vm")
subdirs("monkey")
subdirs("analysis")
subdirs("obfuscation")
subdirs("malware")
subdirs("privacy")
subdirs("core")
subdirs("appgen")
