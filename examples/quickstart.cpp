// Quickstart: the Figure-1 walk in ~100 lines.
//
// Builds a small app whose bundled ad SDK dynamically loads a dex payload,
// then runs the full DyDroid pipeline over it and prints every analysis
// result: static filter, obfuscation report, DCL events with stack-trace
// call sites, intercepted binaries, provenance, and privacy leaks.
#include <cstdio>

#include "appgen/generator.hpp"
#include "core/pipeline.hpp"

using namespace dydroid;

int main() {
  // 1. An app spec: a photo app bundling an ad SDK that loads code at
  //    runtime (the dominant real-world pattern per the paper).
  appgen::AppSpec spec;
  spec.package = "com.example.photoeditor";
  spec.category = "Photography";
  spec.ad_sdk = true;        // Google-Ads-like: copies a dex to cache,
                             // DexClassLoader-loads it, then deletes it
  spec.own_dex_dcl = true;   // the developer also loads a plugin
  spec.own_leaks = privacy::mask_of(privacy::DataType::Calendar);

  support::Rng rng(2024);
  const auto app = appgen::build_app(spec, rng);
  std::printf("built %s: %zu-byte APK\n", spec.package.c_str(),
              app.apk.size());

  // 2. Run the DyDroid pipeline (decompile -> filter -> obfuscation ->
  //    rewrite -> dynamic analysis -> per-binary analyses).
  core::PipelineOptions options;
  options.scenario_setup = [&app](os::Device& device) {
    appgen::apply_scenario(app.scenario, device);
  };
  core::DyDroid pipeline(std::move(options));
  const auto report = pipeline.analyze(app.apk, /*seed=*/1);

  // 3. Results.
  std::printf("\n--- static phase ---\n");
  std::printf("static filter: dex DCL code = %s, native DCL code = %s\n",
              report.static_dcl.dex_dcl ? "yes" : "no",
              report.static_dcl.native_dcl ? "yes" : "no");
  std::printf("obfuscation: lexical=%d reflection=%d native=%d packed=%d\n",
              report.obfuscation.lexical, report.obfuscation.reflection,
              report.obfuscation.native_code,
              report.obfuscation.dex_encryption);

  std::printf("\n--- dynamic phase: %s ---\n",
              std::string(core::dynamic_status_name(report.status)).c_str());
  for (const auto& event : report.events) {
    std::printf("DCL event [%s] call site %s (%s)\n",
                std::string(core::code_kind_name(event.kind)).c_str(),
                event.call_site_class.c_str(),
                std::string(core::entity_name(event.entity)).c_str());
    for (const auto& path : event.paths) {
      std::printf("    loads %s\n", path.c_str());
    }
    std::printf("    stack: %s\n",
                vm::format_stack_trace(event.trace).c_str());
  }

  std::printf("\n--- intercepted binaries ---\n");
  for (const auto& binary : report.binaries) {
    std::printf("%s (%zu bytes) from %s — %s\n", binary.binary.path.c_str(),
                binary.binary.bytes.size(),
                binary.binary.call_site_class.c_str(),
                binary.origin_url ? ("REMOTE: " + *binary.origin_url).c_str()
                                  : "locally packed");
    for (const auto& leak : binary.privacy.leaks) {
      std::printf("    privacy leak: %s via %s in %s\n",
                  std::string(privacy::data_type_name(leak.type)).c_str(),
                  leak.sink_api.c_str(), leak.sink_class.c_str());
    }
  }

  std::printf("\n--- vulnerabilities ---\n%zu finding(s)\n",
              report.vulns.size());
  return 0;
}
