// The Bouncer-evasion experiment (paper §III-B(a)).
//
// App_M is known malware (Swiss code monkeys): submitted directly, the
// store's scanner (MiniDroidNative over the static APK) rejects it.
// App_L contains no malicious code — it asks a server for a payload link at
// runtime. During review the server refuses; App_L passes and is published.
// After release the server turns delivery on and App_L loads App_M on end
// users' devices. DyDroid's dynamic interception catches what the static
// review could not.
#include <cstdio>

#include "appgen/generator.hpp"
#include "core/pipeline.hpp"
#include "dex/builder.hpp"
#include "malware/families.hpp"

using namespace dydroid;

namespace {

/// Train the store's scanner and DyDroid's detector the same way.
malware::DroidNative make_scanner() {
  malware::DroidNative scanner(0.9);
  support::Rng rng(11);
  for (int f = 0; f < malware::kNumFamilies; ++f) {
    const auto family = malware::family_at(f);
    for (const auto& s : malware::generate_training_samples(family, 4, rng)) {
      scanner.train(malware::family_name(family), s);
    }
  }
  return scanner;
}

/// App_L: downloads a payload URL and DexClassLoader-loads it.
apk::ApkFile build_app_l(const std::string& url) {
  manifest::Manifest man;
  man.package = "com.example.appl";
  man.add_permission(manifest::kInternet);
  man.add_permission(manifest::kWriteExternalStorage);
  man.components.push_back(manifest::Component{
      manifest::ComponentKind::Activity, "com.example.appl.Main", true});

  dex::DexBuilder b;
  auto m = b.cls("com.example.appl.Main", "android.app.Activity")
               .method("onCreate", 1);
  // Ask the server; if it refuses (review time), do nothing malicious.
  m.new_instance(1, "java.net.URL");
  m.const_str(2, url);
  m.invoke_virtual("java.net.URL", "<init>", {1, 2});
  m.invoke_virtual("java.net.URL", "openConnection", {1});
  m.move_result(3);
  m.invoke_virtual("java.net.HttpURLConnection", "getResponseCode", {3});
  m.move_result(4);
  m.const_int(5, 200);
  m.cmp_eq(6, 4, 5);
  m.if_eqz(6, "benign");
  // Server says go: download & load App_M.
  m.invoke_virtual("java.net.URLConnection", "getInputStream", {3});
  m.move_result(7);
  m.new_instance(8, "java.io.FileOutputStream");
  m.const_str(9, "/data/data/com.example.appl/cache/appm.dex");
  m.invoke_virtual("java.io.FileOutputStream", "<init>", {8, 9});
  m.label("copy");
  m.invoke_virtual("java.io.InputStream", "read", {7});
  m.move_result(10);
  m.if_eqz(10, "load");
  m.invoke_virtual("java.io.OutputStream", "write", {8, 10});
  m.jump("copy");
  m.label("load");
  m.new_instance(11, "dalvik.system.DexClassLoader");
  m.const_str(12, "/data/data/com.example.appl/cache");
  m.invoke_virtual("dalvik.system.DexClassLoader", "<init>", {11, 9, 12});
  m.label("benign");
  m.return_void();
  m.done();

  apk::ApkFile apk;
  apk.write_manifest(man);
  apk.write_classes_dex(b.build());
  apk.sign("appl-dev");
  return apk;
}

core::AppReport run(const apk::ApkFile& apk, const malware::DroidNative* det,
                    bool server_delivers, const support::Bytes& payload) {
  core::PipelineOptions options;
  options.detector = det;
  options.scenario_setup = [&](os::Device& device) {
    device.network().host_dynamic(
        "http://update.example.com/payload",
        [server_delivers, payload]() -> std::optional<support::Bytes> {
          if (!server_delivers) return std::nullopt;  // review-time refusal
          return payload;
        });
  };
  core::DyDroid pipeline(std::move(options));
  return pipeline.analyze(apk.serialize(), 7);
}

}  // namespace

int main() {
  const auto scanner = make_scanner();
  support::Rng rng(5);
  const auto app_m = malware::generate_payload(
      malware::Family::SwissCodeMonkeys, malware::PayloadOptions{}, rng);

  // 1. Submitting App_M directly: the store's static scan rejects it.
  const auto direct = scanner.scan(app_m);
  std::printf("App_M direct submission: %s\n",
              direct ? ("REJECTED (" + direct->family + ")").c_str()
                     : "accepted (?!)");

  // 2. App_L at review time: server withholds the payload.
  const auto app_l = build_app_l("http://update.example.com/payload");
  const auto review = run(app_l, &scanner, /*server_delivers=*/false, app_m);
  std::printf("App_L during review: status=%s, malware found=%zu -> %s\n",
              std::string(core::dynamic_status_name(review.status)).c_str(),
              review.malware_loaded().size(),
              review.malware_loaded().empty() ? "APPROVED" : "rejected");

  // 3. App_L after release: server delivers; DyDroid intercepts & flags.
  const auto released = run(app_l, &scanner, /*server_delivers=*/true, app_m);
  std::printf("App_L after release: status=%s\n",
              std::string(core::dynamic_status_name(released.status)).c_str());
  for (const auto* hit : released.malware_loaded()) {
    std::printf("  DyDroid intercepted %s -> %s (score %.2f), origin %s\n",
                hit->binary.path.c_str(), hit->malware->family.c_str(),
                hit->malware->score,
                hit->origin_url ? hit->origin_url->c_str() : "local");
  }
  std::printf(
      "\nConclusion: static review cannot see remotely gated payloads; \n"
      "dynamic interception with download tracking can (paper §III-B).\n");
  return 0;
}
