// Market survey: the Section-V measurement campaign as one program.
//
// Generates a scaled marketplace corpus, trains MiniDroidNative, runs the
// DyDroid pipeline over every app and prints a §V-style summary of all five
// measured aspects — provenance/entity, obfuscation, malware,
// vulnerabilities and privacy — plus a sample per-app JSON record as a
// measurement campaign would persist it.
//
// Scale with DYDROID_SCALE (default here: 0.02 ≈ 1,175 apps).
#include <cstdio>
#include <map>

#include "appgen/corpus.hpp"
#include "core/pipeline.hpp"
#include "core/report_json.hpp"
#include "driver/corpus_runner.hpp"
#include "malware/families.hpp"
#include "support/log.hpp"

using namespace dydroid;

int main() {
  support::set_log_level(support::LogLevel::Error);
  const double scale = appgen::scale_from_env(0.02);

  // Corpus + detector.
  appgen::CorpusConfig config;
  config.scale = scale;
  const auto corpus = appgen::generate_corpus(config);
  malware::DroidNative detector(0.9);
  {
    support::Rng rng(0xD401DA);
    for (int f = 0; f < malware::kNumFamilies; ++f) {
      const auto family = malware::family_at(f);
      for (const auto& s :
           malware::generate_training_samples(family, 4, rng)) {
        detector.train(malware::family_name(family), s);
      }
    }
  }
  std::printf("surveying %zu apps (scale %.3f), detector trained on %zu"
              " samples\n\n",
              corpus.apps.size(), scale, detector.training_size());

  // The campaign: one shared pipeline mapped over the corpus by the
  // parallel driver (DYDROID_JOBS workers, deterministic per-app seeds).
  core::PipelineOptions options;
  options.detector = &detector;
  const core::DyDroid pipeline(std::move(options));
  driver::RunnerConfig runner_config;
  runner_config.seed_base = 1;  // app N runs with seed 1 + N
  const driver::CorpusRunner runner(pipeline, runner_config);
  const auto result = runner.run(corpus);

  std::size_t exercised = 0, intercepted = 0, remote = 0, own_dcl = 0,
              third_dcl = 0, packed = 0, lexical = 0, malware_apps = 0,
              vulnerable = 0, leaky = 0;
  std::map<std::string, int> families;
  std::string sample_json;
  for (const auto& outcome : result.outcomes) {
    const auto& report = outcome.report;

    if (report.status == core::DynamicStatus::kExercised) ++exercised;
    const bool hit_dex = report.intercepted(core::CodeKind::Dex);
    const bool hit_native = report.intercepted(core::CodeKind::Native);
    if (hit_dex || hit_native) ++intercepted;
    if (!report.remote_loaded().empty()) ++remote;
    const auto dex_use = report.entity_use(core::CodeKind::Dex);
    const auto native_use = report.entity_use(core::CodeKind::Native);
    if (dex_use.own || native_use.own) ++own_dcl;
    if (dex_use.third_party || native_use.third_party) ++third_dcl;
    if (report.obfuscation.dex_encryption) ++packed;
    if (report.obfuscation.lexical) ++lexical;
    const auto hits = report.malware_loaded();
    if (!hits.empty()) {
      ++malware_apps;
      for (const auto* hit : hits) ++families[hit->malware->family];
      if (sample_json.empty()) {
        sample_json = core::report_to_json(report);
      }
    }
    if (!report.vulns.empty()) ++vulnerable;
    for (const auto& binary : report.binaries) {
      if (!binary.privacy.leaks.empty()) {
        ++leaky;
        break;
      }
    }
  }

  std::printf("== survey summary ==============================\n");
  std::printf("corpus wall time:          %.1f ms on %zu worker(s)"
              " (%.0f apps/s)\n",
              result.wall_ms, result.threads,
              result.wall_ms > 0
                  ? 1000.0 * static_cast<double>(result.outcomes.size()) /
                        result.wall_ms
                  : 0.0);
  std::printf("exercised:                 %zu\n", exercised);
  std::printf("apps with intercepted DCL: %zu\n", intercepted);
  std::printf("  third-party initiated:   %zu\n", third_dcl);
  std::printf("  developer initiated:     %zu\n", own_dcl);
  std::printf("policy violators (remote): %zu\n", remote);
  std::printf("packed (DEX encryption):   %zu\n", packed);
  std::printf("lexically obfuscated:      %zu\n", lexical);
  std::printf("apps loading malware:      %zu\n", malware_apps);
  for (const auto& [family, count] : families) {
    std::printf("    %-26s %d file(s)\n", family.c_str(), count);
  }
  std::printf("code-injection vulnerable: %zu\n", vulnerable);
  std::printf("apps whose loaded code leaks privacy: %zu\n", leaky);

  if (!sample_json.empty()) {
    std::printf("\n== sample per-app JSON record (first flagged app) ==\n%s",
                sample_json.c_str());
  }
  return 0;
}
