// App hardening with DEX encryption (paper §III-D), from both sides.
//
// Obfuscator side: a smart-TV remote app is packed Bangcle-style — its
// classes.dex is encrypted into an asset, a stub container + native decrypt
// library are injected, and the manifest's android:name is repointed.
// Static reverse engineering now sees only the stub.
//
// Analyst side: DyDroid's rules recognize the packer pattern, and the
// dynamic phase intercepts the DECRYPTED original bytecode the moment the
// container loads it — the packer is defeated at runtime.
#include <cstdio>

#include "analysis/rewriter.hpp"
#include "appgen/generator.hpp"
#include "core/pipeline.hpp"
#include "dex/disassembler.hpp"
#include "obfuscation/packer.hpp"

using namespace dydroid;

int main() {
  // The app to protect: a TV-remote with a proprietary pairing protocol.
  appgen::AppSpec spec;
  spec.package = "com.smarttv.remotecontrol";
  spec.category = "Entertainment";
  support::Rng rng(31337);
  auto plain = appgen::build_app(spec, rng);
  const auto original = apk::ApkFile::deserialize(plain.apk);
  const auto original_dex = *original.get(apk::kClassesDexEntry);

  // ---- pack it -------------------------------------------------------------
  obfuscation::PackerOptions packer;
  packer.anti_repackaging = true;
  const auto packed = obfuscation::pack(original, packer);
  std::printf("packed %s:\n", spec.package.c_str());
  for (const auto& entry : packed.entry_names()) {
    std::printf("  %-40s %zu bytes\n", entry.c_str(),
                packed.get(entry)->size());
  }

  // Static view: the stub hides everything.
  const auto stub = *packed.read_classes_dex();
  std::printf("\nstub disassembly (all an attacker sees statically):\n%s\n",
              dex::disassemble(stub).c_str());

  // ---- analyze it ----------------------------------------------------------
  core::DyDroid pipeline;
  const auto report = pipeline.analyze(packed.serialize(), 3);
  std::printf("obfuscation analysis: dex_encryption=%s (rules of §III-D)\n",
              report.obfuscation.dex_encryption ? "DETECTED" : "missed");
  std::printf("dynamic status: %s\n",
              std::string(core::dynamic_status_name(report.status)).c_str());

  for (const auto& binary : report.binaries) {
    if (binary.binary.path.find(".shield") == std::string::npos) continue;
    std::printf("\nintercepted decrypted payload: %s (%zu bytes)\n",
                binary.binary.path.c_str(), binary.binary.bytes.size());
    std::printf("  byte-identical to the original classes.dex: %s\n",
                binary.binary.bytes == original_dex ? "YES" : "no");
    std::printf("  call site: %s (%s)\n",
                binary.binary.call_site_class.c_str(),
                std::string(core::entity_name(binary.binary.entity)).c_str());
  }

  // Bonus: the anti-repackaging trap crashes strict tooling.
  const auto rewritten = analysis::rewrite_with_permission(
      packed.serialize(), manifest::kWriteExternalStorage);
  std::printf("\nanti-repackaging: strict repacker says: %s\n",
              rewritten.ok() ? "(rewrote fine?)" : rewritten.error().c_str());
  return 0;
}
